#include "core/runtime.h"

#include <algorithm>

#include "base/logging.h"
#include "trace/trace.h"

namespace bagua {

BaguaRuntime::BaguaRuntime(CommWorld* world, int rank, Net* net,
                           Optimizer* optimizer, Algorithm* algorithm,
                           BaguaOptions options)
    : net_(net), algorithm_(algorithm), options_(options) {
  ctx_.comm.world = world;
  ctx_.comm.rank = rank;
  ctx_.comm.space = 0;
  ctx_.comm.step = 0;
  ctx_.comm.hierarchical = options.hierarchical;
  ctx_.comm.wire_dtype = options.wire_dtype;
  ctx_.optimizer = optimizer;
  ctx_.options = options;
  ctx_.step = 0;
  if (options.async_comm) {
    engine_ = std::make_unique<AsyncCommEngine>(rank);
  }
}

Result<double> BaguaRuntime::TrainStepCE(const Tensor& x, const Tensor& y) {
  TraceSpan step_span(ctx_.comm.rank, TraceStream::kTrain, "step",
                      /*bytes=*/0, static_cast<int>(ctx_.step));
  net_->ZeroGrad();
  double loss = 0.0;
  Tensor grad_logits;
  {
    TraceSpan fwd(ctx_.comm.rank, TraceStream::kCompute, "forward");
    Tensor logits;
    RETURN_IF_ERROR(net_->Forward(x, &logits));
    RETURN_IF_ERROR(SoftmaxCrossEntropy(logits, y, &loss, &grad_logits));
  }

  // Backward + bucket communication per the StepPlan. The trace shows the
  // backward pass as "bwd.seg" compute segments split at unit-dispatch
  // points; comm "bucket" spans land between segments on the synchronous
  // path and across them under the async engine (real overlap).
  {
    TraceSpan bwd(ctx_.comm.rank, TraceStream::kCompute, "backward+update");
    const Status step_status =
        profiled_ ? ExecutionStep(grad_logits) : ProfilingStep(grad_logits);
    // Always join — even a failed step must not leave units in flight
    // behind it (OnStepEnd and the caller assume a quiet comm thread).
    const Status join_status = JoinStep();
    RETURN_IF_ERROR(step_status);
    RETURN_IF_ERROR(join_status);
    RETURN_IF_ERROR(algorithm_->OnStepEnd(&ctx_));
  }
  ++ctx_.step;
  ++ctx_.comm.step;
  return loss;
}

Status BaguaRuntime::ProfilingStep(const Tensor& grad_out) {
  // Plan-build: log every hook invocation, execute unoptimized.
  profile_log_.clear();
  RETURN_IF_ERROR(net_->Backward(grad_out, [&](size_t layer) {
    size_t numel = 0;
    for (const Param& p : net_->layer(layer)->params()) {
      numel += p.grad->numel();
    }
    if (numel > 0) profile_log_.push_back({layer, numel});
  }));

  // Bucketing + flattening over the recorded order.
  const auto plan =
      PlanBuckets(profile_log_, options_.bucket_bytes, options_.fuse);
  std::vector<std::vector<Param>> layer_params(net_->num_layers());
  for (size_t i = 0; i < net_->num_layers(); ++i) {
    layer_params[i] = net_->layer(i)->params();
  }
  RETURN_IF_ERROR(
      BuildBuckets(plan, layer_params, options_.fuse, &buckets_));
  RETURN_IF_ERROR(BuildStepPlan());

  RETURN_IF_ERROR(algorithm_->Init(&ctx_, &buckets_));

  // The profiling step still has gradients to communicate — flush every
  // unit in *plan order* (the same order execution steps will use, so
  // step 0 and step N trace identically), inline on this thread
  // (profiled_ is still false, so DispatchUnit bypasses the engine: the
  // schedule was only just emitted, there is nothing to overlap with).
  for (const PlanUnit& unit : plan_.units) {
    RETURN_IF_ERROR(DispatchUnit(unit));
  }
  profiled_ = true;
  return Status::OK();
}

Status BaguaRuntime::BuildStepPlan() {
  plan_ = StepPlan();
  plan_.num_blocks = net_->num_layers();
  for (const Bucket& b : buckets_) {
    PlanUnit unit;
    unit.index = b.index;
    unit.numel = b.numel;
    unit.layers = b.layers;
    unit.first_block =
        *std::min_element(b.layers.begin(), b.layers.end());
    unit.last_block = *std::max_element(b.layers.begin(), b.layers.end());
    // O = 1: the unit fires when its last layer's backward completes
    // (tracked by a countdown over `layers`, of which first_block is the
    // final member). O = 0: fused to the end of backward.
    unit.grad_dep = options_.overlap ? static_cast<int>(unit.first_block)
                                     : kGradDepBackwardEnd;
    // TrainStepCE is lockstep: the next forward always waits for the
    // whole step (async algorithms relax this inside their own helper
    // threads, not in the step schedule).
    unit.forward_gate = ForwardGate::kAll;
    plan_.units.push_back(std::move(unit));
  }
  RETURN_IF_ERROR(plan_.Validate());

  layer_to_unit_.assign(net_->num_layers(), -1);
  for (const PlanUnit& unit : plan_.units) {
    for (size_t layer : unit.layers) {
      layer_to_unit_[layer] = static_cast<int>(unit.index);
    }
  }
  unit_pending_.assign(plan_.units.size(), 0);
  return Status::OK();
}

Status BaguaRuntime::ExecutionStep(const Tensor& grad_out) {
  // Reset per-iteration countdowns: a unit fires when all of its layers
  // have completed backward.
  for (const PlanUnit& unit : plan_.units) {
    unit_pending_[unit.index] = static_cast<int>(unit.layers.size());
  }
  Tracer* const tracer = GlobalTracer();
  const int rank = ctx_.comm.rank;
  // Backward runs as "bwd.seg" compute segments, split at every dispatch
  // point, so a segment never contains inline communication — measured
  // backward∥comm overlap (harness/report.h) is exactly the wall-time
  // intersection of comm "bucket" spans with these segments: identically
  // zero on the synchronous path, positive under the engine.
  uint64_t seg = Tracer::kInvalidSpan;
  if (tracer != nullptr) {
    seg = tracer->BeginSpan(rank, TraceStream::kCompute, "bwd.seg");
  }
  Status dispatch_status;
  const Status bwd_status = net_->Backward(grad_out, [&](size_t layer) {
    if (!dispatch_status.ok()) return;
    const int u = layer_to_unit_[layer];
    if (u < 0) return;  // parameterless layer
    const PlanUnit& unit = plan_.units[u];
    if (unit.grad_dep == kGradDepBackwardEnd) return;  // fires after bwd
    if (--unit_pending_[u] == 0) {
      if (tracer != nullptr) tracer->EndSpan(rank, seg);
      dispatch_status = DispatchUnit(unit);
      if (tracer != nullptr) {
        seg = tracer->BeginSpan(rank, TraceStream::kCompute, "bwd.seg");
      }
    }
  });
  if (tracer != nullptr) tracer->EndSpan(rank, seg);
  RETURN_IF_ERROR(bwd_status);
  RETURN_IF_ERROR(dispatch_status);
  // Backward-end units (O = 0): all communication strictly after
  // backward, in plan order.
  for (const PlanUnit& unit : plan_.units) {
    if (unit.grad_dep != kGradDepBackwardEnd) continue;
    RETURN_IF_ERROR(DispatchUnit(unit));
  }
  return Status::OK();
}

Status BaguaRuntime::DispatchUnit(const PlanUnit& unit) {
  Bucket* const bucket = &buckets_[unit.index];
  Tracer* const tracer = GlobalTracer();
  const int rank = ctx_.comm.rank;
  uint64_t qspan = Tracer::kInvalidSpan;
  if (tracer != nullptr) {
    qspan = tracer->BeginSpan(rank, TraceStream::kCommQueue, "bucket.queue",
                              bucket->numel * sizeof(float),
                              static_cast<int>(unit.index));
  }
  if (engine_ == nullptr || !profiled_) {
    // Synchronous executor (and the profiling flush): zero queue wait,
    // unit runs inline on this thread.
    if (tracer != nullptr) tracer->EndSpan(rank, qspan);
    return RunUnit(bucket);
  }
  engine_->Enqueue(qspan, [this, bucket] { return RunUnit(bucket); });
  return Status::OK();
}

Status BaguaRuntime::RunUnit(Bucket* bucket) {
  TraceSpan span(ctx_.comm.rank, TraceStream::kComm, "bucket",
                 bucket->numel * sizeof(float),
                 static_cast<int>(bucket->index));
  RETURN_IF_ERROR(bucket->GatherToFlat());
  RETURN_IF_ERROR(algorithm_->OnBucketReady(&ctx_, bucket));
  return bucket->ScatterFromFlat();
}

Status BaguaRuntime::JoinStep() {
  if (engine_ == nullptr) return Status::OK();
  return engine_->Drain();
}

Status BaguaRuntime::Finish() {
  // Quiesce the comm thread before the algorithm tears down helper state.
  RETURN_IF_ERROR(JoinStep());
  return algorithm_->Finish(&ctx_);
}

}  // namespace bagua
