#include "core/runtime.h"

#include "base/logging.h"
#include "trace/trace.h"

namespace bagua {

BaguaRuntime::BaguaRuntime(CommWorld* world, int rank, Net* net,
                           Optimizer* optimizer, Algorithm* algorithm,
                           BaguaOptions options)
    : net_(net), algorithm_(algorithm), options_(options) {
  ctx_.comm.world = world;
  ctx_.comm.rank = rank;
  ctx_.comm.space = 0;
  ctx_.comm.step = 0;
  ctx_.comm.hierarchical = options.hierarchical;
  ctx_.optimizer = optimizer;
  ctx_.options = options;
  ctx_.step = 0;
}

Result<double> BaguaRuntime::TrainStepCE(const Tensor& x, const Tensor& y) {
  TraceSpan step_span(ctx_.comm.rank, TraceStream::kTrain, "step",
                      /*bytes=*/0, static_cast<int>(ctx_.step));
  net_->ZeroGrad();
  double loss = 0.0;
  Tensor grad_logits;
  {
    TraceSpan fwd(ctx_.comm.rank, TraceStream::kCompute, "forward");
    Tensor logits;
    RETURN_IF_ERROR(net_->Forward(x, &logits));
    RETURN_IF_ERROR(SoftmaxCrossEntropy(logits, y, &loss, &grad_logits));
  }

  // Backward + bucket communication: ExecutionStep interleaves the two
  // when overlap is on, which the trace shows as comm spans (kComm, from
  // FireBucket) nested inside this backward span (kCompute).
  {
    TraceSpan bwd(ctx_.comm.rank, TraceStream::kCompute, "backward+update");
    if (!profiled_) {
      RETURN_IF_ERROR(ProfilingStep(grad_logits));
    } else {
      RETURN_IF_ERROR(ExecutionStep(grad_logits));
    }
    RETURN_IF_ERROR(algorithm_->OnStepEnd(&ctx_));
  }
  ++ctx_.step;
  ++ctx_.comm.step;
  return loss;
}

Status BaguaRuntime::ProfilingStep(const Tensor& grad_out) {
  // Profiling phase: log every hook invocation, execute unoptimized.
  profile_log_.clear();
  Status hook_status;
  RETURN_IF_ERROR(net_->Backward(grad_out, [&](size_t layer) {
    size_t numel = 0;
    for (const Param& p : net_->layer(layer)->params()) {
      numel += p.grad->numel();
    }
    if (numel > 0) profile_log_.push_back({layer, numel});
  }));

  // Bucketing + flattening over the recorded order.
  const auto plan =
      PlanBuckets(profile_log_, options_.bucket_bytes, options_.fuse);
  std::vector<std::vector<Param>> layer_params(net_->num_layers());
  for (size_t i = 0; i < net_->num_layers(); ++i) {
    layer_params[i] = net_->layer(i)->params();
  }
  RETURN_IF_ERROR(
      BuildBuckets(plan, layer_params, options_.fuse, &buckets_));

  layer_to_bucket_.assign(net_->num_layers(), -1);
  for (const Bucket& b : buckets_) {
    for (size_t layer : b.layers) {
      // With F=0 a layer may span several single-tensor buckets; the
      // bucket countdown below tracks per-bucket layer membership instead.
      layer_to_bucket_[layer] = static_cast<int>(b.index);
    }
  }
  bucket_pending_.assign(buckets_.size(), 0);

  RETURN_IF_ERROR(algorithm_->Init(&ctx_, &buckets_));
  profiled_ = true;

  // The profiling step still has gradients to communicate — run every
  // bucket after the fact (unoptimized execution).
  for (Bucket& bucket : buckets_) {
    RETURN_IF_ERROR(FireBucket(&bucket));
  }
  return Status::OK();
}

Status BaguaRuntime::ExecutionStep(const Tensor& grad_out) {
  // Reset per-iteration countdowns: a bucket fires when all of its layers
  // have completed backward.
  for (const Bucket& b : buckets_) {
    bucket_pending_[b.index] = static_cast<int>(b.layers.size());
  }
  Status comm_status;
  RETURN_IF_ERROR(net_->Backward(grad_out, [&](size_t layer) {
    if (!comm_status.ok() || !options_.overlap) return;
    const int b = layer_to_bucket_[layer];
    if (b < 0) return;  // parameterless layer
    if (--bucket_pending_[b] == 0) {
      comm_status = FireBucket(&buckets_[b]);
    }
  }));
  RETURN_IF_ERROR(comm_status);
  if (!options_.overlap) {
    // O = 0: all communication happens strictly after backward.
    for (Bucket& bucket : buckets_) {
      RETURN_IF_ERROR(FireBucket(&bucket));
    }
  }
  return Status::OK();
}

Status BaguaRuntime::FireBucket(Bucket* bucket) {
  TraceSpan span(ctx_.comm.rank, TraceStream::kComm, "bucket",
                 bucket->numel * sizeof(float),
                 static_cast<int>(bucket->index));
  RETURN_IF_ERROR(bucket->GatherToFlat());
  RETURN_IF_ERROR(algorithm_->OnBucketReady(&ctx_, bucket));
  return bucket->ScatterFromFlat();
}

Status BaguaRuntime::Finish() { return algorithm_->Finish(&ctx_); }

}  // namespace bagua
