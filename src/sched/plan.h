#ifndef BAGUA_SCHED_PLAN_H_
#define BAGUA_SCHED_PLAN_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "base/status.h"
#include "model/profiles.h"

namespace bagua {

/// \page sched The schedule IR
///
/// One training step's communication schedule, as a first-class object.
/// The profiling phase emits a StepPlan once; afterwards *both* executors
/// consume the identical IR:
///
///   - the real executor (core/runtime.cc): buckets fire — inline on the
///     worker thread, or enqueued onto the AsyncCommEngine's in-order
///     queue — exactly in plan-unit order;
///   - the virtual-time pricer (sched/pricer.cc, driving harness/timing):
///     every op edge of the DES graph is derived from the same plan
///     attributes, so a schedule the simulator prices is, by construction,
///     the schedule the runtime runs.
///
/// This is the DAG formulation of synchronous-SGD scheduling (Shi et al.)
/// specialized to BAGUA's relaxations: what used to be four interacting
/// booleans (`overlap_backward/overlap_forward/async/update_before_comm`)
/// is now a list of units with explicit dependency edges.

/// \name Gradient-readiness sentinels for PlanUnit::grad_dep.
/// @{
/// The unit's communication rides a free-running stream: it depends on no
/// backward op at all (the async family — comm never gates on compute).
inline constexpr int kGradDepNone = -1;
/// The unit fires only after the whole backward pass (O = 0: every unit is
/// fused to the end of the step).
inline constexpr int kGradDepBackwardEnd = -2;
/// @}

/// \brief What the *next* iteration's forward of a block must wait for.
enum class ForwardGate : int {
  kNone = 0,     ///< nothing — async: compute never gates on communication
  kCovered = 1,  ///< only the units covering the block (BytePS priority
                 ///< pulls: forward overlaps the tail of communication)
  kAll = 2,      ///< every unit of the previous iteration (full barrier)
};

/// \brief One communication unit of the schedule: a fused bucket, or (F=0)
/// a single layer's tensors. Ordered — plan order IS the per-rank comm
/// submission order, which collectives require to be identical on every
/// rank (lockstep tag allocation).
struct PlanUnit {
  size_t index = 0;  ///< position in the plan (== bucket index)
  size_t numel = 0;  ///< gradient elements communicated by this unit

  /// Block (pricing) / layer (runtime) coverage. `first_block` is the
  /// lowest covered index — the *last* to complete in backward, so its
  /// backward op is the unit's readiness edge.
  size_t first_block = 0;
  size_t last_block = 0;
  /// Runtime plans only: the layer ids whose backward completion readies
  /// this unit (descending, as gradients appear). Empty in pricing plans,
  /// where blocks are profile entries rather than live layers.
  std::vector<size_t> layers;

  /// Backward-completion edge: a block index (>= 0) whose backward op
  /// readies this unit, or a sentinel (kGradDepNone/kGradDepBackwardEnd).
  int grad_dep = kGradDepBackwardEnd;
  /// Decentralized pattern (Fig. 3): the local optimizer update precedes
  /// the unit's communication instead of following it.
  bool update_before_comm = false;
  /// Submit this unit's ops *inside* the backward stream the moment its
  /// gradients complete (instead of queueing them after backward). Only
  /// profitable when the update precedes comm — a post-comm update would
  /// stall the backward FIFO on the wire.
  bool inline_submit = false;
  /// Route this unit through the host-side summation service (BytePS).
  bool server_reduce = false;
  /// Next-iteration forward dependency contributed by this unit.
  ForwardGate forward_gate = ForwardGate::kAll;
};

/// \brief The per-step schedule IR. Units are listed in comm-queue order;
/// both executors must preserve it per rank (collectives stay
/// rank-lockstep-ordered).
struct StepPlan {
  size_t num_blocks = 0;
  std::vector<PlanUnit> units;

  /// True when any unit fires during backward (an O=1 shape).
  bool OverlapsBackward() const;
  /// Structural checks: indices in range, coverage ordered, plan order
  /// follows descending first_block for backward-overlapped units.
  Status Validate() const;
  std::string ToString() const;
};

/// \name Plan builders (unitizers).
/// @{

/// Canonical fused plan: parameter tensors packed in reverse block order —
/// as their gradients appear during backward — into buckets of
/// ~`bucket_bytes`, never splitting a tensor. Units default to the
/// overlap-backward shape: grad_dep = first covered block, update after
/// comm, full forward barrier.
StepPlan FusedUnitsPlan(const ModelProfile& model, size_t bucket_bytes);

/// F = 0: one unit per parameter tensor, reverse block order.
StepPlan PerTensorPlan(const ModelProfile& model);

/// @}

/// \name Plan transforms. Each rewrites dependency edges in place; the
/// baselines and the BAGUA O/F/H switches are compositions of these.
/// @{

/// O = 0: all communication strictly after backward (grad_dep becomes
/// kGradDepBackwardEnd, nothing submits inline).
void FuseAtEnd(StepPlan* plan);

/// Decentralized/low-precision pattern: local update before communication.
/// Units that fire during backward submit inline (the update only needs
/// this unit's gradients, so it interleaves into the backward stream and
/// its communication starts early).
void UpdateBeforeComm(StepPlan* plan);

/// BytePS priority scheduling: the next iteration's forward of a block
/// waits only for the units covering that block, so early-layer pulls
/// overlap the tail of communication.
void PriorityForwardOverlap(StepPlan* plan);

/// Async family: communication never gates on (or blocks) local compute —
/// backward edges of overlapped units dissolve and forward never waits.
void AsyncStream(StepPlan* plan);

/// BytePS summation service: every unit is reduced host-side, pipelined
/// with the network transfers of other units.
void ServerReduce(StepPlan* plan);

/// @}

/// \brief The schedule shape the BAGUA profiling phase (or a baseline's
/// documented strategy) compiles down to — the former SystemSpec booleans,
/// now only an input to plan construction.
struct ScheduleShape {
  size_t bucket_bytes = 10u << 20;
  bool per_tensor = false;
  bool overlap_backward = true;
  bool overlap_forward = false;
  bool async = false;
  bool update_before_comm = false;
  bool server = false;
};

/// \brief Composes builders + transforms into the pricing plan for a
/// shape. The ONLY place the legacy boolean vocabulary is interpreted.
StepPlan BuildPricingPlan(const ModelProfile& model,
                          const ScheduleShape& shape);

/// \brief A pricing-plan factory: lets a system (baseline or BAGUA spec)
/// carry "how my schedule is built" as data.
using PlanBuilder = std::function<StepPlan(const ModelProfile&)>;

}  // namespace bagua

#endif  // BAGUA_SCHED_PLAN_H_
