#ifndef BAGUA_SCHED_ENGINE_H_
#define BAGUA_SCHED_ENGINE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>

#include "base/status.h"

namespace bagua {

/// \brief One worker's dedicated communication thread: an in-order queue
/// of bucket closures plus a drain/join point — the real-overlap executor
/// of the StepPlan IR.
///
/// ExecutionStep enqueues a unit's closure the moment its gradient
/// countdown hits zero and continues backward immediately; the comm thread
/// pops strictly FIFO, so the per-rank collective order — and therefore
/// the lockstep tag-space sequence — is byte-for-byte the order the
/// synchronous executor would have produced. Drain() is the step's join:
/// it blocks until the queue is empty and the in-flight closure (if any)
/// retired, then reports the sticky first error.
///
/// Error model: the first failing closure's status is latched and every
/// closure behind it is *skipped* (popped but not run). Running past a
/// failed collective would desynchronize the rank's tag sequence from its
/// peers; skipping keeps the failure prompt and the queue bounded. The
/// destructor drains and joins, so a runtime can always tear down safely.
///
/// Thread-safety: one producer (the worker thread) per engine. The
/// closures run on the engine thread — see the OnBucketReady threading
/// contract in core/algorithm.h.
class AsyncCommEngine {
 public:
  /// `rank` is only used to label the engine's queue-wait trace spans.
  explicit AsyncCommEngine(int rank);
  ~AsyncCommEngine();

  AsyncCommEngine(const AsyncCommEngine&) = delete;
  AsyncCommEngine& operator=(const AsyncCommEngine&) = delete;

  /// Enqueues one unit closure; returns immediately. `queue_span` is an
  /// open kCommQueue span handle from the global tracer (or
  /// Tracer::kInvalidSpan) that the engine closes when the unit leaves the
  /// queue — the recorded interval is the unit's queue wait.
  void Enqueue(uint64_t queue_span, std::function<Status()> fn);

  /// Blocks until every enqueued closure has retired; returns the sticky
  /// first error (OK when none failed). The error stays latched for later
  /// Drain() calls until Reset().
  Status Drain();

  /// Clears the sticky error (after the caller handled it).
  void Reset();

  int rank() const { return rank_; }

 private:
  struct Item {
    uint64_t queue_span;
    std::function<Status()> fn;
  };

  void Loop();

  const int rank_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // signals the engine thread
  std::condition_variable drain_cv_;  // signals Drain()
  std::deque<Item> queue_;
  bool in_flight_ = false;
  bool stop_ = false;
  Status error_;  // first failure, sticky
  std::thread thread_;
};

}  // namespace bagua

#endif  // BAGUA_SCHED_ENGINE_H_
