#include "sched/plan.h"

#include <algorithm>

#include "base/strings.h"

namespace bagua {

bool StepPlan::OverlapsBackward() const {
  for (const PlanUnit& u : units) {
    if (u.grad_dep >= 0) return true;
  }
  return false;
}

Status StepPlan::Validate() const {
  size_t prev_first = num_blocks;  // sentinel: one past any valid block
  for (size_t i = 0; i < units.size(); ++i) {
    const PlanUnit& u = units[i];
    if (u.index != i) {
      return Status::InvalidArgument(
          StrFormat("unit %zu carries index %zu", i, u.index));
    }
    if (u.numel == 0) {
      return Status::InvalidArgument(StrFormat("unit %zu is empty", i));
    }
    if (u.first_block > u.last_block || u.last_block >= num_blocks) {
      return Status::InvalidArgument(
          StrFormat("unit %zu covers blocks [%zu, %zu] of %zu", i,
                    u.first_block, u.last_block, num_blocks));
    }
    if (u.grad_dep != kGradDepNone && u.grad_dep != kGradDepBackwardEnd &&
        (u.grad_dep < 0 ||
         static_cast<size_t>(u.grad_dep) >= num_blocks)) {
      return Status::InvalidArgument(
          StrFormat("unit %zu grad_dep %d out of range", i, u.grad_dep));
    }
    if (u.inline_submit && !u.update_before_comm) {
      return Status::InvalidArgument(StrFormat(
          "unit %zu submits inline but updates after comm — the backward "
          "stream would stall on the wire", i));
    }
    // Units fire as gradients appear, i.e. in descending first_block
    // order; a backward-overlapped unit out of that order would deadlock
    // the in-order comm queue (its gradients complete after a unit queued
    // behind it).
    if (u.grad_dep >= 0) {
      if (u.first_block > prev_first) {
        return Status::InvalidArgument(
            StrFormat("unit %zu (first_block %zu) queued after first_block "
                      "%zu — not in backward order", i, u.first_block,
                      prev_first));
      }
      prev_first = u.first_block;
    }
  }
  return Status::OK();
}

std::string StepPlan::ToString() const {
  std::string out =
      StrFormat("StepPlan: %zu blocks, %zu units\n", num_blocks, units.size());
  for (const PlanUnit& u : units) {
    const char* gate = u.forward_gate == ForwardGate::kNone      ? "none"
                       : u.forward_gate == ForwardGate::kCovered ? "covered"
                                                                 : "all";
    std::string dep = u.grad_dep == kGradDepNone ? std::string("free")
                      : u.grad_dep == kGradDepBackwardEnd
                          ? std::string("bwd-end")
                          : StrFormat("bwd[%d]", u.grad_dep);
    out += StrFormat(
        "  unit %zu: %zu elems, blocks [%zu, %zu], ready: %s%s%s%s, "
        "fwd-gate: %s\n",
        u.index, u.numel, u.first_block, u.last_block, dep.c_str(),
        u.update_before_comm ? ", upd-before-comm" : "",
        u.inline_submit ? ", inline" : "",
        u.server_reduce ? ", server" : "", gate);
  }
  return out;
}

namespace {

/// Per-tensor sizes of one block, mirroring how the runtime's profiling
/// phase sees a block: `num_tensors` equal tensors, remainder on the first.
std::vector<size_t> BlockTensorSizes(const BlockProfile& blk) {
  const int tensors = std::max(1, blk.num_tensors);
  const size_t per = blk.params / tensors;
  std::vector<size_t> sizes(tensors, per);
  sizes[0] += blk.params - per * tensors;  // remainder
  return sizes;
}

void Reindex(StepPlan* plan) {
  for (size_t i = 0; i < plan->units.size(); ++i) plan->units[i].index = i;
}

}  // namespace

StepPlan FusedUnitsPlan(const ModelProfile& model, size_t bucket_bytes) {
  StepPlan plan;
  plan.num_blocks = model.blocks.size();
  PlanUnit current;
  bool open = false;
  size_t bytes = 0;
  for (size_t i = plan.num_blocks; i > 0; --i) {
    const size_t b = i - 1;
    for (size_t numel : BlockTensorSizes(model.blocks[b])) {
      if (!open) {
        current = PlanUnit();
        current.first_block = b;
        current.last_block = b;
        open = true;
        bytes = 0;
      }
      current.numel += numel;
      current.first_block = b;
      bytes += numel * sizeof(float);
      if (bytes >= bucket_bytes) {
        plan.units.push_back(current);
        open = false;
      }
    }
  }
  if (open) plan.units.push_back(current);
  for (PlanUnit& u : plan.units) u.grad_dep = static_cast<int>(u.first_block);
  Reindex(&plan);
  return plan;
}

StepPlan PerTensorPlan(const ModelProfile& model) {
  StepPlan plan;
  plan.num_blocks = model.blocks.size();
  for (size_t i = plan.num_blocks; i > 0; --i) {
    const size_t b = i - 1;
    for (size_t numel : BlockTensorSizes(model.blocks[b])) {
      PlanUnit u;
      u.numel = numel;
      u.first_block = b;
      u.last_block = b;
      u.grad_dep = static_cast<int>(b);
      plan.units.push_back(u);
    }
  }
  Reindex(&plan);
  return plan;
}

void FuseAtEnd(StepPlan* plan) {
  for (PlanUnit& u : plan->units) {
    u.grad_dep = kGradDepBackwardEnd;
    u.inline_submit = false;
  }
}

void UpdateBeforeComm(StepPlan* plan) {
  for (PlanUnit& u : plan->units) {
    u.update_before_comm = true;
    u.inline_submit = u.grad_dep >= 0;
  }
}

void PriorityForwardOverlap(StepPlan* plan) {
  for (PlanUnit& u : plan->units) u.forward_gate = ForwardGate::kCovered;
}

void AsyncStream(StepPlan* plan) {
  for (PlanUnit& u : plan->units) {
    // A unit already fused to the backward end keeps that edge: the async
    // runtime still produces this step's gradients before shipping them.
    // Only backward-*overlapped* edges dissolve into the free stream.
    if (u.grad_dep >= 0) u.grad_dep = kGradDepNone;
    u.forward_gate = ForwardGate::kNone;
  }
}

void ServerReduce(StepPlan* plan) {
  for (PlanUnit& u : plan->units) u.server_reduce = true;
}

StepPlan BuildPricingPlan(const ModelProfile& model,
                          const ScheduleShape& shape) {
  StepPlan plan = shape.per_tensor ? PerTensorPlan(model)
                                   : FusedUnitsPlan(model, shape.bucket_bytes);
  // Order matters: FuseAtEnd first so UpdateBeforeComm/AsyncStream see the
  // final backward edges (O=0 decentralized updates stay after backward;
  // O=0 async keeps its backward-end edge).
  if (!shape.overlap_backward) FuseAtEnd(&plan);
  if (shape.update_before_comm) UpdateBeforeComm(&plan);
  if (shape.overlap_forward) PriorityForwardOverlap(&plan);
  if (shape.async) AsyncStream(&plan);
  if (shape.server) ServerReduce(&plan);
  return plan;
}

}  // namespace bagua
