#include "sched/pricer.h"

#include <algorithm>

#include "base/logging.h"
#include "base/strings.h"

namespace bagua {

PlanPrice PricePlan(const StepPlan& plan, const PlanCosts& costs) {
  const size_t nblocks = plan.num_blocks;
  const auto& units = plan.units;

  IterationSim sim;
  const int compute = sim.AddResource("compute");
  const int comm = sim.AddResource("comm");
  bool has_server = false;
  for (const PlanUnit& u : units) has_server |= u.server_reduce;
  const int server = has_server ? sim.AddResource("server") : -1;

  constexpr int kIters = 3;
  std::vector<int> prev_unit_done;  // per unit: op completing param update
  // Per-iteration bookkeeping for the steady-state and overlap accounting.
  std::vector<std::vector<int>> iter_ops(kIters);
  std::vector<int> steady_bwd_ops, steady_comm_ops;

  for (int it = 0; it < kIters; ++it) {
    auto track = [&](int op) {
      iter_ops[it].push_back(op);
      return op;
    };
    // ---- forward: each block waits on the previous iteration's units
    // according to their forward gates ----
    std::vector<int> fwd_ops(nblocks);
    for (size_t b = 0; b < nblocks; ++b) {
      std::vector<int> deps;
      if (it > 0) {
        for (size_t u = 0; u < units.size(); ++u) {
          switch (units[u].forward_gate) {
            case ForwardGate::kNone:
              break;
            case ForwardGate::kCovered:
              if (units[u].first_block <= b && b <= units[u].last_block) {
                deps.push_back(prev_unit_done[u]);
              }
              break;
            case ForwardGate::kAll:
              deps.push_back(prev_unit_done[u]);
              break;
          }
        }
      }
      fwd_ops[b] = track(sim.AddOp(StrFormat("i%d.fwd%zu", it, b), compute,
                                   costs.fwd_s(b), std::move(deps)));
    }
    // ---- backward (reverse), submitting each unit's update/communication
    // ops per its plan attributes: inline units enter the FIFO compute
    // stream the moment their gradients complete; the rest queue after
    // backward (they overlap with other units' communication regardless).
    // Submission order == plan order — the in-order comm queue. ----
    std::vector<int> bwd_ops(nblocks, -1);
    std::vector<int> unit_done(units.size(), -1);
    std::vector<size_t> deferred_units;

    auto submit_unit = [&](size_t u) {
      const PlanUnit& unit = units[u];
      std::vector<int> grad_ready;
      if (unit.grad_dep >= 0) {
        grad_ready.push_back(bwd_ops[unit.grad_dep]);
      } else if (unit.grad_dep == kGradDepBackwardEnd) {
        grad_ready.push_back(bwd_ops[0]);  // whole backward done
      }
      // kGradDepNone: free-running stream, FIFO ordering only.
      const double update_s = costs.update_s(unit);
      const double comm_s = costs.comm_s(unit);
      if (unit.update_before_comm) {
        const int upd = track(sim.AddOp(StrFormat("i%d.upd%zu", it, u),
                                        compute, update_s, grad_ready));
        unit_done[u] = track(sim.AddOp(StrFormat("i%d.comm%zu", it, u), comm,
                                       comm_s, {upd}));
        if (it == kIters - 1) steady_comm_ops.push_back(unit_done[u]);
      } else {
        std::vector<int> upd_deps;
        const int c = track(sim.AddOp(StrFormat("i%d.comm%zu", it, u), comm,
                                      comm_s, grad_ready));
        if (it == kIters - 1) steady_comm_ops.push_back(c);
        upd_deps.push_back(c);
        if (unit.server_reduce) {
          upd_deps.push_back(track(sim.AddOp(StrFormat("i%d.srv%zu", it, u),
                                             server, costs.server_s(unit),
                                             grad_ready)));
        }
        unit_done[u] = track(sim.AddOp(StrFormat("i%d.upd%zu", it, u),
                                       compute, update_s,
                                       std::move(upd_deps)));
      }
    };

    for (size_t i = nblocks; i > 0; --i) {
      const size_t b = i - 1;
      bwd_ops[b] = track(sim.AddOp(StrFormat("i%d.bwd%zu", it, b), compute,
                                   costs.bwd_s(b), {}));
      if (it == kIters - 1) steady_bwd_ops.push_back(bwd_ops[b]);
      for (size_t u = 0; u < units.size(); ++u) {
        if (units[u].first_block != b) continue;
        if (units[u].inline_submit) {
          submit_unit(u);
        } else {
          deferred_units.push_back(u);
        }
      }
    }
    for (size_t u : deferred_units) submit_unit(u);
    prev_unit_done = unit_done;
  }
  BAGUA_CHECK(sim.Run().ok());

  // Steady-state iteration time: completion of everything belonging to the
  // last iteration minus the same point one iteration earlier.
  auto IterFinish = [&](int it) {
    double t = 0.0;
    for (int op : iter_ops[it]) t = std::max(t, sim.FinishTime(op));
    return t;
  };

  PlanPrice price;
  price.iteration_s = IterFinish(kIters - 1) - IterFinish(kIters - 2);
  price.compute_s = sim.ResourceBusy(compute) / kIters;
  price.comm_s = sim.ResourceBusy(comm) / kIters;

  // Planned backward∥comm overlap of the steady-state iteration: the part
  // of its comm-stream ops that lands inside its backward window.
  if (!steady_bwd_ops.empty()) {
    double wbegin = 0.0, wend = 0.0;
    bool first = true;
    for (int op : steady_bwd_ops) {
      const double s = sim.StartTime(op), f = sim.FinishTime(op);
      wbegin = first ? s : std::min(wbegin, s);
      wend = first ? f : std::max(wend, f);
      first = false;
    }
    double total = 0.0;
    for (int op : steady_comm_ops) {
      const double s = sim.StartTime(op), f = sim.FinishTime(op);
      total += f - s;
      price.overlap_s += std::max(0.0, std::min(f, wend) - std::max(s, wbegin));
    }
    if (total > 0.0) price.overlap_frac = price.overlap_s / total;
  }
  return price;
}

}  // namespace bagua
