#include "sched/engine.h"

#include <utility>

#include "trace/trace.h"

namespace bagua {

AsyncCommEngine::AsyncCommEngine(int rank)
    : rank_(rank), thread_([this] { Loop(); }) {}

AsyncCommEngine::~AsyncCommEngine() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  thread_.join();
}

void AsyncCommEngine::Enqueue(uint64_t queue_span, std::function<Status()> fn) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back({queue_span, std::move(fn)});
  }
  work_cv_.notify_one();
}

Status AsyncCommEngine::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [this] { return queue_.empty() && !in_flight_; });
  return error_;
}

void AsyncCommEngine::Reset() {
  std::unique_lock<std::mutex> lock(mu_);
  error_ = Status::OK();
}

void AsyncCommEngine::Loop() {
  for (;;) {
    Item item;
    bool skip;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to retire
      item = std::move(queue_.front());
      queue_.pop_front();
      in_flight_ = true;
      // A failed collective poisons the rest of the queue — running on
      // would desync tag order. Teardown (stop_) likewise skips: peers may
      // already be gone, and a destructor must never block on the wire.
      skip = !error_.ok() || stop_;
    }
    // The queue-wait span ends when the unit leaves the queue; the bucket's
    // own comm span (opened by the closure) follows it on this thread.
    if (Tracer* t = GlobalTracer()) t->EndSpan(rank_, item.queue_span);
    Status st = skip ? Status::OK() : item.fn();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (!skip && !st.ok() && error_.ok()) error_ = std::move(st);
      in_flight_ = false;
    }
    drain_cv_.notify_all();
  }
}

}  // namespace bagua
