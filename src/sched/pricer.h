#ifndef BAGUA_SCHED_PRICER_H_
#define BAGUA_SCHED_PRICER_H_

#include <functional>

#include "sched/plan.h"
#include "sim/des.h"

namespace bagua {

/// \brief Per-op durations for pricing a StepPlan: the plan says *what
/// runs when*, these say *how long each op takes*. Supplied by
/// harness/timing.cc from the device/network calibration and the
/// algorithm's cost model.
struct PlanCosts {
  /// Forward / backward seconds of one block.
  std::function<double(size_t block)> fwd_s;
  std::function<double(size_t block)> bwd_s;
  /// Wire + codec seconds of one unit's communication.
  std::function<double(const PlanUnit&)> comm_s;
  /// Optimizer-update seconds of one unit.
  std::function<double(const PlanUnit&)> update_s;
  /// Host summation-service seconds of one unit (used only for units with
  /// server_reduce set; may be null when no unit is).
  std::function<double(const PlanUnit&)> server_s;
};

/// \brief Steady-state price of one iteration under a plan.
struct PlanPrice {
  double iteration_s = 0.0;  ///< steady-state time per iteration
  double compute_s = 0.0;    ///< per-iteration compute-stream busy time
  double comm_s = 0.0;       ///< per-iteration comm-stream busy time
  /// Communication seconds of the steady-state iteration that run inside
  /// its backward window — the *planned* backward∥comm overlap that the
  /// async engine's measured wall-clock overlap is gated against.
  double overlap_s = 0.0;
  /// overlap_s over the iteration's total communication seconds (0 when
  /// the iteration communicates nothing).
  double overlap_frac = 0.0;
};

/// \brief Prices `plan` on the DES stream timelines (sim/des.h).
///
/// Builds the op graph of three consecutive iterations over (compute,
/// comm[, server]) serializing resources — ops on one resource run in
/// submission order, which is exactly the in-order comm queue the real
/// executor keeps — and reports the steady-state iteration time
/// (difference between the last two iteration finish times), so pipelining
/// across iterations is captured. Every dependency edge comes from the
/// plan's attributes; this function contains no schedule policy of its
/// own.
PlanPrice PricePlan(const StepPlan& plan, const PlanCosts& costs);

}  // namespace bagua

#endif  // BAGUA_SCHED_PRICER_H_
