#ifndef BAGUA_COMM_PRIMITIVES_H_
#define BAGUA_COMM_PRIMITIVES_H_

#include <vector>

#include "comm/context.h"
#include "compress/compressor.h"
#include "sim/network.h"
#include "tensor/tensor.h"

namespace bagua {

/// The four BAGUA communication primitives of §3.2. Each is an MPI-style
/// collective: all ranks call it together with their local tensor; on
/// return the tensor holds the primitive's output.
///
/// Costs: every primitive has a matching Estimate*Cost function that prices
/// one execution under the network model — the timing-mode twin of Exec.

/// \brief Error-compensation state for C_LP_S (Listing 2's
/// `init_states`): δ (worker-side, full size) and ε (server-side, sized to
/// this rank's aggregation partition).
struct ClpsState {
  Tensor worker_err;  ///< δ_i — error of compressing this rank's update.
  Tensor server_err;  ///< ε_i — error of compressing this rank's partition sum.
};

/// \brief Allocates zeroed δ/ε for an n-element tensor under `ctx`'s
/// topology and hierarchy setting.
Result<ClpsState> InitClpsState(const CommContext& ctx, size_t n);

/// C_FP_S — centralized, full precision, synchronous:
///   ∀i: x_i' = Σ_j x_j
/// Executed with the ScatterReduce pattern of §3.3 (flat) or intra-node
/// allreduce + leader ring + broadcast (hierarchical). When
/// ctx->wire_dtype is bf16/fp16 the sum instead travels the
/// reduced-precision wire (collectives/wire_format.h): 2-byte payloads,
/// fp32 accumulation, and one canonical requantization order, so the
/// result is bitwise identical across flat/hierarchical/tree execution.
Status CFpS(CommContext* ctx, float* data, size_t n);

/// C_LP_S — centralized, low precision, with optional error compensation:
///   ∀i: x_i' = Q(Σ_j Q(x_j − δ_j) − ε_i)           (plus δ/ε updates, §3.2)
/// Pass state == nullptr to disable error compensation:
///   ∀i: x_i' = Q(Σ_j Q(x_j))
/// Hierarchical execution (§3.4): full-precision intra-node aggregation,
/// compressed exchange among node leaders, intra-node broadcast.
Status CLpS(CommContext* ctx, const Compressor& codec, float* data, size_t n,
            ClpsState* state);

/// \brief Neighbor strategies for the decentralized primitives (§3.3).
enum class PeerSelection {
  kRing,    ///< exchange with ranks (i-1, i+1)
  kRandom,  ///< pseudo-random perfect matching, re-drawn each step
};

/// D_FP_S — decentralized, full precision:
///   ∀i: x_i' = mean of {x_i} ∪ {x_j : j ∈ N(i)}
/// (§3.3: "each worker sends the local tensor to peers, receives tensors
/// from peers, and calculates their average".)
Status DFpS(CommContext* ctx, PeerSelection peers, float* data, size_t n);

/// D_LP_S — decentralized, low precision: as D_FP_S but tensors are
/// compressed with Q before sending and decompressed after receiving.
Status DLpS(CommContext* ctx, const Compressor& codec, PeerSelection peers,
            float* data, size_t n);

/// --- timing-mode twins -----------------------------------------------

/// Communication time of one C_FP_S over an n*4-byte tensor.
double EstimateCFpSCost(const ClusterTopology& topo, const NetworkConfig& net,
                        double bytes, bool hierarchical);

/// Communication time of one C_LP_S; the codec determines wire sizes.
double EstimateCLpSCost(const ClusterTopology& topo, const NetworkConfig& net,
                        const Compressor& codec, size_t numel,
                        bool hierarchical);

/// Communication time of one D_FP_S / D_LP_S exchange.
double EstimateDecenCost(const ClusterTopology& topo, const NetworkConfig& net,
                         PeerSelection peers, double full_bytes,
                         double wire_bytes, bool hierarchical);

}  // namespace bagua

#endif  // BAGUA_COMM_PRIMITIVES_H_
