#ifndef BAGUA_COMM_CONTEXT_H_
#define BAGUA_COMM_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "base/rng.h"
#include "sim/topology.h"
#include "tensor/dtype.h"
#include "transport/transport.h"

namespace bagua {

/// \brief Shared state of one simulated cluster: the transport, the
/// topology, and a tag-space allocator.
///
/// One CommWorld is created per training run; every worker thread derives a
/// per-rank CommContext from it (Listing 2's `get_global_comm()`).
class CommWorld {
 public:
  CommWorld(ClusterTopology topo, uint64_t seed)
      : topo_(topo),
        seed_(seed),
        group_(std::make_unique<TransportGroup>(topo.world_size())) {}

  /// Injects a custom transport (e.g. a FaultyTransport decorator); must
  /// span exactly `topo.world_size()` ranks.
  CommWorld(ClusterTopology topo, uint64_t seed,
            std::unique_ptr<TransportGroup> group)
      : topo_(topo), seed_(seed), group_(std::move(group)) {
    BAGUA_CHECK_EQ(group_->world_size(), topo_.world_size());
  }

  const ClusterTopology& topo() const { return topo_; }
  TransportGroup* group() { return group_.get(); }
  uint64_t seed() const { return seed_; }
  int world_size() const { return topo_.world_size(); }

 private:
  ClusterTopology topo_;
  uint64_t seed_;
  std::unique_ptr<TransportGroup> group_;
};

/// \brief Per-rank view of a CommWorld, passed to every primitive call.
///
/// `space` is the tag namespace of the *current* primitive invocation; all
/// ranks must call primitives in the same order with the same spaces, which
/// the runtime guarantees by allocating spaces deterministically from the
/// invocation sequence.
struct CommContext {
  CommWorld* world = nullptr;
  int rank = 0;
  /// Tag namespace for the next primitive call; advanced by each call.
  /// Reserve kSpaceStride values per invocation (hierarchical execution
  /// uses several internal collectives).
  uint32_t space = 0;
  /// Monotone step counter, used to derive per-step randomized peers.
  uint64_t step = 0;
  /// Execute primitives hierarchically (intra-node + leaders)?
  bool hierarchical = false;
  /// Element encoding on the wire for the full-precision synchronous
  /// primitive (C_FP_S): kFp32 runs the classic fp32 collectives; kBf16 /
  /// kFp16 route through the reduced-wire allreduce
  /// (collectives/wire_format.h) — 2-byte payloads, fp32 accumulation,
  /// canonical ascending-rank requantization chain. Kept LAST so existing
  /// aggregate initializers stay valid.
  WireDtype wire_dtype = WireDtype::kFp32;

  static constexpr uint32_t kSpaceStride = 8;

  TransportGroup* group() const { return world->group(); }
  const ClusterTopology& topo() const { return world->topo(); }
  int world_size() const { return world->world_size(); }

  /// Claims the next tag namespace (stride of kSpaceStride sub-spaces).
  uint32_t NextSpace() {
    const uint32_t s = space;
    space += kSpaceStride;
    return s;
  }

  /// Rng stream for (rank, step) — independent across ranks and steps but
  /// reproducible.
  Rng MakeRankRng() const {
    return Rng(MixSeed(world->seed(), MixSeed(rank + 1, step)));
  }
  /// Rng stream shared by ALL ranks at this step (peer selection must agree
  /// across the cluster).
  Rng MakeSharedRng() const { return Rng(MixSeed(world->seed(), step)); }
};

}  // namespace bagua

#endif  // BAGUA_COMM_CONTEXT_H_
