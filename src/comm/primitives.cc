#include "comm/primitives.h"

#include <algorithm>
#include <cstring>

#include "base/arena.h"
#include "base/logging.h"
#include "base/strings.h"
#include "collectives/collectives.h"
#include "collectives/hierarchy.h"
#include "collectives/wire_format.h"
#include "sim/collective_cost.h"
#include "tensor/ops.h"
#include "trace/trace.h"

namespace bagua {

namespace {

/// Numeric workspaces (accumulators, decode buffers) draw from the "comm"
/// subsystem arena; only bytes that actually cross the transport surface
/// stay on the transport pool. This splits the gauges honestly: wire
/// footprint under "transport", reduction scratch under "comm".
Arena& CommArena() {
  static Arena* arena = &MemoryRegistry::Global().ArenaFor("comm");
  return *arena;
}

std::vector<int> WorldRanks(const ClusterTopology& topo) {
  std::vector<int> ranks(topo.world_size());
  for (int r = 0; r < topo.world_size(); ++r) ranks[r] = r;
  return ranks;
}

std::vector<int> NodeRanks(const ClusterTopology& topo, int rank) {
  const int node = topo.NodeOf(rank);
  std::vector<int> ranks(topo.devices_per_node);
  for (int i = 0; i < topo.devices_per_node; ++i) {
    ranks[i] = node * topo.devices_per_node + i;
  }
  return ranks;
}

std::vector<int> LeaderRanks(const ClusterTopology& topo) {
  std::vector<int> ranks(topo.num_nodes);
  for (int n = 0; n < topo.num_nodes; ++n) {
    ranks[n] = n * topo.devices_per_node;
  }
  return ranks;
}

/// The flat ScatterReduce-with-compression kernel of §3.3, run over an
/// explicit group. Implements the full C_LP_S semantics; the identity codec
/// and null state degrade it to C_FP_S.
Status ScatterReduceExec(CommContext* ctx, const std::vector<int>& ranks,
                         const Compressor& codec, float* data, size_t n,
                         ClpsState* state, uint32_t space) {
  const size_t m = ranks.size();
  const int i = IndexIn(ranks, ctx->rank);
  if (i < 0) return Status::InvalidArgument("rank not in group");
  if (m == 1) {
    if (state == nullptr) return Status::OK();
    // Degenerate single-member group: x' = Q(Q(x - δ) - ε), errors updated.
  }
  TransportGroup* group = ctx->group();
  Rng rng = ctx->MakeRankRng();

  // All per-call workspaces are recycled (ArenaScratch from the comm arena
  // for numeric buffers, AcquireBuffer + Recycle for wire payloads), so a
  // steady-state training loop runs this primitive with zero heap
  // allocations. Chunk 0 is the largest (ChunkOf gives the remainder to
  // the first chunks), so it bounds every scratch.
  const size_t maxc = std::max<size_t>(ChunkOf(n, m, 0).count, 1);

  // u = x + δ (or x when error compensation is off). Note: §3.2 writes the
  // residual with a minus sign; the telescoping error-feedback recursion of
  // DoubleSqueeze / 1-bit Adam *adds* the carried residual, so we store δ
  // with the standard sign (see DESIGN.md, "Known deltas").
  ArenaScratch u_scratch(&CommArena(), n * sizeof(float));
  float* u = u_scratch.floats();
  if (state != nullptr && state->worker_err.defined()) {
    BAGUA_CHECK_EQ(state->worker_err.numel(), n);
    Add(data, state->worker_err.data(), u, n);
  } else {
    std::memcpy(u, data, n * sizeof(float));
  }

  ArenaScratch decode_scratch(&CommArena(), maxc * sizeof(float));
  float* decode_buf = decode_scratch.floats();
  // Compressors assign out to exactly CompressedBytes(count), which never
  // exceeds the capacity acquired here, so Compress never reallocates.
  std::vector<uint8_t> payload = group->AcquireBuffer(codec.CompressedBytes(maxc));
  std::vector<uint8_t> own_partition_payload =
      group->AcquireBuffer(codec.CompressedBytes(maxc));
  std::vector<uint8_t> rxbufs[2];
  int cur = 0;
  TransportHandle pending;

  Status st = [&]() -> Status {
    // Phase 1: compress every partition of u and ship partition j to rank j.
    for (size_t j = 0; j < m; ++j) {
      const Chunk c = ChunkOf(n, m, j);
      RETURN_IF_ERROR(
          codec.Compress(u + c.begin, c.count, &rng, &payload));
      if (state != nullptr && state->worker_err.defined()) {
        // δ' = (x − δ) − Q(x − δ), per partition.
        RETURN_IF_ERROR(codec.Decompress(payload.data(), payload.size(),
                                         c.count, decode_buf));
        float* err = state->worker_err.data() + c.begin;
        for (size_t k = 0; k < c.count; ++k) {
          err[k] = u[c.begin + k] - decode_buf[k];
        }
      }
      if (static_cast<int>(j) == i) {
        own_partition_payload.assign(payload.begin(), payload.end());
      } else {
        TraceSpan span(ctx->rank, TraceStream::kComm, "scatter_reduce.push",
                       payload.size(), static_cast<int>(j));
        TraceCountBytes(ctx->rank, "primitive.scatter_reduce.bytes",
                        payload.size());
        RETURN_IF_ERROR(group->Send(ctx->rank, ranks[j], MakeTag(space, 0),
                                    payload.data(), payload.size()));
      }
    }

    // Phase 2 (server side of partition i): receive, decode, merge — with
    // the next member's receive posted before the current decode+reduce
    // runs, double-buffered. The merge stays in ascending member order, so
    // the float accumulation is bitwise the seed's.
    const Chunk mine = ChunkOf(n, m, i);
    ArenaScratch sum_scratch(&CommArena(),
                             std::max<size_t>(mine.count, 1) * sizeof(float));
    float* sum = sum_scratch.floats();
    std::fill(sum, sum + std::max<size_t>(mine.count, 1), 0.0f);
    auto next_member = [&](size_t j) -> int {
      for (size_t k = j + 1; k < m; ++k) {
        if (static_cast<int>(k) != i) return static_cast<int>(k);
      }
      return -1;
    };
    for (size_t j = 0; j < m; ++j) {
      const std::vector<uint8_t>* pj = &own_partition_payload;
      if (static_cast<int>(j) != i) {
        if (!pending.valid()) {
          pending = group->PostRecv(ranks[j], ctx->rank, MakeTag(space, 0),
                                    &rxbufs[cur]);
        }
        RETURN_IF_ERROR(group->Wait(&pending));
        pending = TransportHandle();
        pj = &rxbufs[cur];
        cur ^= 1;
        const int nj = next_member(j);
        if (nj >= 0) {
          pending = group->PostRecv(ranks[nj], ctx->rank, MakeTag(space, 0),
                                    &rxbufs[cur]);
        }
      }
      RETURN_IF_ERROR(codec.Decompress(pj->data(), pj->size(), mine.count,
                                       decode_buf));
      Axpy(1.0f, decode_buf, sum, mine.count);
    }

    // Apply server-side error compensation and re-compress the merged
    // partition: out = Q(Σ + ε), ε' = (Σ + ε) − out.
    if (state != nullptr && state->server_err.defined()) {
      BAGUA_CHECK_EQ(state->server_err.numel(), mine.count);
      Add(sum, state->server_err.data(), sum, mine.count);
    }
    RETURN_IF_ERROR(codec.Compress(sum, mine.count, &rng, &payload));
    if (state != nullptr && state->server_err.defined()) {
      RETURN_IF_ERROR(codec.Decompress(payload.data(), payload.size(),
                                       mine.count, decode_buf));
      float* err = state->server_err.data();
      for (size_t k = 0; k < mine.count; ++k) {
        err[k] = sum[k] - decode_buf[k];
      }
    }

    // Phase 3: every server broadcasts its merged partition; decode into
    // x'. Same double-buffered shape: the next partition is in flight
    // while the current one decodes.
    {
      TraceSpan span(ctx->rank, TraceStream::kComm, "scatter_reduce.bcast",
                     (m - 1) * payload.size());
      TraceCountBytes(ctx->rank, "primitive.scatter_reduce.bytes",
                      (m - 1) * payload.size());
      for (size_t j = 0; j < m; ++j) {
        if (static_cast<int>(j) == i) continue;
        RETURN_IF_ERROR(group->Send(ctx->rank, ranks[j], MakeTag(space, 1),
                                    payload.data(), payload.size()));
      }
    }
    RETURN_IF_ERROR(codec.Decompress(payload.data(), payload.size(),
                                     mine.count, decode_buf));
    std::memcpy(data + mine.begin, decode_buf, mine.count * sizeof(float));
    for (size_t j = 0; j < m; ++j) {
      if (static_cast<int>(j) == i) continue;
      if (!pending.valid()) {
        pending = group->PostRecv(ranks[j], ctx->rank, MakeTag(space, 1),
                                  &rxbufs[cur]);
      }
      RETURN_IF_ERROR(group->Wait(&pending));
      pending = TransportHandle();
      const std::vector<uint8_t>& rx = rxbufs[cur];
      cur ^= 1;
      const int nj = next_member(j);
      if (nj >= 0) {
        pending = group->PostRecv(ranks[nj], ctx->rank, MakeTag(space, 1),
                                  &rxbufs[cur]);
      }
      const Chunk c = ChunkOf(n, m, j);
      RETURN_IF_ERROR(
          codec.Decompress(rx.data(), rx.size(), c.count, decode_buf));
      std::memcpy(data + c.begin, decode_buf, c.count * sizeof(float));
    }
    return Status::OK();
  }();

  group->Recycle(std::move(payload));
  group->Recycle(std::move(own_partition_payload));
  group->Recycle(std::move(rxbufs[0]));
  group->Recycle(std::move(rxbufs[1]));
  return st;
}

/// Resolves this step's peer set for the decentralized primitives.
/// All members of `ranks` derive identical pairings from the shared rng.
std::vector<int> SelectPeers(CommContext* ctx, const std::vector<int>& ranks,
                             PeerSelection selection) {
  const size_t m = ranks.size();
  const int i = IndexIn(ranks, ctx->rank);
  std::vector<int> peers;
  if (m <= 1 || i < 0) return peers;
  if (selection == PeerSelection::kRing) {
    const int left = ranks[(i + m - 1) % m];
    const int right = ranks[(i + 1) % m];
    peers.push_back(left);
    if (right != left) peers.push_back(right);
    return peers;
  }
  // Random perfect matching, identical on every rank: shuffle the group
  // with the shared per-step rng and pair consecutive entries.
  Rng rng = ctx->MakeSharedRng();
  std::vector<uint32_t> perm(m);
  rng.Permutation(m, perm.data());
  for (size_t k = 0; k + 1 < m; k += 2) {
    const int a = ranks[perm[k]], b = ranks[perm[k + 1]];
    if (a == ctx->rank) peers.push_back(b);
    if (b == ctx->rank) peers.push_back(a);
  }
  return peers;  // empty for the odd rank out
}

/// Pairwise exchange-and-average with `peers`, optionally through a codec.
Status DecenExchange(CommContext* ctx, const std::vector<int>& peers,
                     const Compressor* codec, float* data, size_t n,
                     uint32_t space) {
  if (peers.empty()) return Status::OK();
  TransportGroup* group = ctx->group();
  Rng rng = ctx->MakeRankRng();

  // Recycled workspaces: payload (our model, possibly compressed) and the
  // receive vector cycle through the transport pool; the double
  // accumulator and decode buffer come from the comm arena — so the
  // gossip steady state allocates nothing.
  std::vector<uint8_t> payload = group->AcquireBuffer(
      codec != nullptr ? codec->CompressedBytes(n) : n * sizeof(float));
  ArenaScratch acc_scratch(&CommArena(), n * sizeof(double));
  double* acc = acc_scratch.doubles();
  ArenaScratch decode_scratch(&CommArena(), n * sizeof(float));
  float* decoded = decode_scratch.floats();
  std::vector<uint8_t> rx;

  Status st = [&]() -> Status {
    if (codec != nullptr) {
      RETURN_IF_ERROR(codec->Compress(data, n, &rng, &payload));
    } else {
      payload.resize(n * sizeof(float));
      std::memcpy(payload.data(), data, payload.size());
    }
    for (int p : peers) {
      if (!group->IsAlive(p)) continue;  // dead peer: no point shipping bytes
      // The peer index in the span name makes decentralized traces
      // seed-sensitive: a different peer matching is a visibly different
      // schedule, which the golden-determinism tests rely on.
      TraceSpan span(ctx->rank, TraceStream::kComm, "decen.peer",
                     payload.size(), p);
      TraceCountBytes(ctx->rank, "primitive.decen.bytes", payload.size());
      RETURN_IF_ERROR(group->Send(ctx->rank, p, MakeTag(space, 2),
                                  payload.data(), payload.size()));
    }
    for (size_t k = 0; k < n; ++k) acc[k] = data[k];
    size_t contributions = 0;
    TransportHandle pending;
    for (size_t pi = 0; pi < peers.size(); ++pi) {
      // The next peer's receive is posted before this payload is decoded
      // and accumulated (descriptor-level pipelining; peer order — and
      // therefore the accumulation order — is unchanged).
      if (!pending.valid()) {
        pending =
            group->PostRecv(peers[pi], ctx->rank, MakeTag(space, 2), &rx);
      }
      const Status recv = group->Wait(&pending);
      pending = TransportHandle();
      if (pi + 1 < peers.size()) {
        pending =
            group->PostRecv(peers[pi + 1], ctx->rank, MakeTag(space, 2), &rx);
      }
      if (recv.IsDataLoss()) {
        // Peer died mid-exchange: graceful degradation — average over the
        // survivors instead of aborting (decentralized SGD tolerates a
        // shrinking peer set; see §4's partial-averaging argument).
        continue;
      }
      RETURN_IF_ERROR(recv);
      if (codec != nullptr) {
        RETURN_IF_ERROR(
            codec->Decompress(rx.data(), rx.size(), n, decoded));
      } else {
        if (rx.size() != n * sizeof(float)) {
          return Status::Internal("decentralized payload size mismatch");
        }
        std::memcpy(decoded, rx.data(), rx.size());
      }
      for (size_t k = 0; k < n; ++k) acc[k] += decoded[k];
      ++contributions;
    }
    const double inv = 1.0 / static_cast<double>(contributions + 1);
    for (size_t k = 0; k < n; ++k) {
      data[k] = static_cast<float>(acc[k] * inv);
    }
    return Status::OK();
  }();

  group->Recycle(std::move(payload));
  group->Recycle(std::move(rx));
  return st;
}

/// Decentralized execution shared by D_FP_S and D_LP_S (codec == nullptr
/// for full precision).
Status DecenExec(CommContext* ctx, const Compressor* codec,
                 PeerSelection selection, float* data, size_t n) {
  const uint32_t space = ctx->NextSpace();
  const ClusterTopology& topo = ctx->topo();
  if (!ctx->hierarchical || topo.devices_per_node == 1) {
    const auto ranks = WorldRanks(topo);
    const auto peers = SelectPeers(ctx, ranks, selection);
    return DecenExchange(ctx, peers, codec, data, n, space);
  }
  // Hierarchical (§3.4): workers within a node switch to centralized
  // allreduce; only leaders run the decentralized exchange. The intra-node
  // phases ride the same topology-aware selection as C_FP_S / C_LP_S.
  const auto node_ranks = NodeRanks(topo, ctx->rank);
  RETURN_IF_ERROR(GroupAllreduceAuto(ctx->group(), node_ranks, ctx->rank,
                                     space, data, n));
  Scale(data, 1.0f / static_cast<float>(topo.devices_per_node), n);
  if (topo.IsLeader(ctx->rank)) {
    const auto leaders = LeaderRanks(topo);
    // Make the shared rng agree between flat and hierarchical modes by
    // selecting within the leader group.
    CommContext leader_ctx = *ctx;
    const auto peers = SelectPeers(&leader_ctx, leaders, selection);
    RETURN_IF_ERROR(DecenExchange(ctx, peers, codec, data, n, space + 1));
  }
  return GroupBroadcastAuto(ctx->group(), node_ranks, ctx->rank, 0, space + 2,
                            data, n);
}

}  // namespace

Result<ClpsState> InitClpsState(const CommContext& ctx, size_t n) {
  ClpsState state;
  const ClusterTopology& topo = ctx.topo();
  if (ctx.hierarchical && topo.devices_per_node > 1) {
    if (!topo.IsLeader(ctx.rank)) return state;  // undefined tensors: unused
    const int m = topo.num_nodes;
    const int index = topo.NodeOf(ctx.rank);
    const Chunk c = ChunkOf(n, m, index);
    state.worker_err = Tensor::Zeros({n}, "clps.delta");
    state.server_err = Tensor::Zeros({c.count}, "clps.epsilon");
    return state;
  }
  const int m = topo.world_size();
  const Chunk c = ChunkOf(n, m, ctx.rank);
  state.worker_err = Tensor::Zeros({n}, "clps.delta");
  state.server_err = Tensor::Zeros({c.count}, "clps.epsilon");
  return state;
}

Status CFpS(CommContext* ctx, float* data, size_t n) {
  static const IdentityCompressor kIdentity;
  const uint32_t space = ctx->NextSpace();
  const ClusterTopology& topo = ctx->topo();
  if (ctx->wire_dtype != WireDtype::kFp32) {
    // Reduced wire: 2-byte payloads, fp32 accumulation, one canonical
    // requantization order across topologies (collectives/wire_format.h).
    return AllreduceWire(ctx->group(), topo, ctx->rank, space,
                         ctx->wire_dtype, data, n, ctx->hierarchical);
  }
  if (!ctx->hierarchical || topo.devices_per_node == 1) {
    return ScatterReduceExec(ctx, WorldRanks(topo), kIdentity, data, n,
                             nullptr, space);
  }
  // Topology-aware selection (collectives/hierarchy.h): tree for small
  // tensors, hierarchical allreduce otherwise. All ranks derive the same
  // choice from (topo, n).
  return AllreduceAuto(ctx->group(), topo, ctx->rank, space, data, n);
}

Status CLpS(CommContext* ctx, const Compressor& codec, float* data, size_t n,
            ClpsState* state) {
  const uint32_t space = ctx->NextSpace();
  const ClusterTopology& topo = ctx->topo();
  if (!ctx->hierarchical || topo.devices_per_node == 1) {
    return ScatterReduceExec(ctx, WorldRanks(topo), codec, data, n, state,
                             space);
  }
  // Hierarchical C_LP_S (§3.4): aggregate inside the node at full precision,
  // exchange compressed among leaders, then broadcast within the node. The
  // intra-node phases go through the same topology-aware selection C_FP_S
  // uses (collectives/hierarchy.h): small payloads take the binomial tree,
  // large ones the pipelined ring; the broadcast trees for > 2 devices.
  const auto node_ranks = NodeRanks(topo, ctx->rank);
  RETURN_IF_ERROR(GroupAllreduceAuto(ctx->group(), node_ranks, ctx->rank,
                                     space, data, n));
  if (topo.IsLeader(ctx->rank)) {
    RETURN_IF_ERROR(ScatterReduceExec(ctx, LeaderRanks(topo), codec, data, n,
                                      state, space + 1));
  }
  return GroupBroadcastAuto(ctx->group(), node_ranks, ctx->rank, 0, space + 2,
                            data, n);
}

Status DFpS(CommContext* ctx, PeerSelection peers, float* data, size_t n) {
  return DecenExec(ctx, nullptr, peers, data, n);
}

Status DLpS(CommContext* ctx, const Compressor& codec, PeerSelection peers,
            float* data, size_t n) {
  return DecenExec(ctx, &codec, peers, data, n);
}

double EstimateCFpSCost(const ClusterTopology& topo, const NetworkConfig& net,
                        double bytes, bool hierarchical) {
  if (hierarchical && topo.devices_per_node > 1) {
    switch (ChooseAllreduceAlgo(topo, static_cast<size_t>(bytes))) {
      case AllreduceAlgo::kTree:
        return TreeAllreduceCost(topo, net, topo.world_size(), bytes);
      case AllreduceAlgo::kHierarchical:
        return HierRingAllreduceCost(topo, net, bytes);
      case AllreduceAlgo::kFlatRing:
        return RingAllreduceCost(topo, net, bytes);
    }
  }
  return ScatterReduceCost(topo, net, bytes, bytes);
}

double EstimateCLpSCost(const ClusterTopology& topo, const NetworkConfig& net,
                        const Compressor& codec, size_t numel,
                        bool hierarchical) {
  const double full_bytes = static_cast<double>(numel) * sizeof(float);
  if (hierarchical && topo.devices_per_node > 1) {
    // Wire bytes among leaders: one compressed copy of the tensor per phase.
    const size_t m = topo.num_nodes;
    double wire = 0.0;
    for (size_t j = 0; j < static_cast<size_t>(m); ++j) {
      wire += static_cast<double>(
          codec.CompressedBytes(ChunkOf(numel, m, j).count));
    }
    return IntraNodeAllreduceCost(topo, net, full_bytes) +
           LeaderScatterReduceCost(topo, net, wire, wire) +
           IntraNodeBroadcastCost(topo, net, full_bytes);
  }
  const size_t m = topo.world_size();
  double wire = 0.0;
  for (size_t j = 0; j < static_cast<size_t>(m); ++j) {
    wire += static_cast<double>(
        codec.CompressedBytes(ChunkOf(numel, m, j).count));
  }
  return ScatterReduceCost(topo, net, wire, wire);
}

double EstimateDecenCost(const ClusterTopology& topo, const NetworkConfig& net,
                         PeerSelection peers, double full_bytes,
                         double wire_bytes, bool hierarchical) {
  if (peers == PeerSelection::kRing) {
    return DecenRingCost(topo, net, full_bytes, wire_bytes, hierarchical);
  }
  return DecenRandomCost(topo, net, full_bytes, wire_bytes, hierarchical);
}

}  // namespace bagua
