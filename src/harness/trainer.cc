#include "harness/trainer.h"

#include <cmath>
#include <memory>

#include "algorithms/algorithms.h"
#include "algorithms/registry.h"
#include "compress/qsgd.h"
#include "base/logging.h"
#include "base/sync.h"
#include "core/runtime.h"
#include "model/loss.h"
#include "model/net.h"

namespace bagua {

namespace {

struct WorkerState {
  std::unique_ptr<Net> net;
  std::unique_ptr<Optimizer> optimizer;
  std::unique_ptr<Algorithm> algorithm;
  std::unique_ptr<BaguaRuntime> runtime;
};

}  // namespace

Result<ConvergenceResult> RunConvergence(const ConvergenceOptions& opts) {
  const int world = opts.topo.world_size();
  CommWorld comm_world(opts.topo, opts.seed);
  SyntheticClassification dataset(opts.data);

  // Model dims: input must match the dataset.
  std::vector<size_t> dims = opts.dims;
  dims.front() = opts.data.dim;
  dims.back() = opts.data.classes;

  const bool use_adam = opts.adam || opts.algorithm == "1bit-adam";

  // Async needs one shared server sized to the model.
  std::shared_ptr<ShardedParameterServer> server;
  if (opts.algorithm == "async" || opts.algorithm == "async-lp") {
    Net probe = Net::Mlp(dims);
    server = std::make_shared<ShardedParameterServer>(
        probe.NumParams(), std::max(1, opts.topo.num_nodes), world);
  }

  std::vector<WorkerState> workers(world);
  for (int r = 0; r < world; ++r) {
    WorkerState& w = workers[r];
    w.net = std::make_unique<Net>(Net::Mlp(dims));
    w.net->InitParams(MixSeed(opts.seed, 17));
    if (use_adam) {
      w.optimizer = std::make_unique<AdamOptimizer>(opts.lr);
    } else {
      w.optimizer = std::make_unique<SgdOptimizer>(opts.lr);
    }
    if (opts.algorithm == "async") {
      w.algorithm = std::make_unique<AsyncPsAlgorithm>(server, opts.lr);
    } else if (opts.algorithm == "async-lp") {
      static const QsgdCompressor kAsyncLpCodec(8);
      w.algorithm =
          std::make_unique<AsyncPsAlgorithm>(server, opts.lr, &kAsyncLpCodec);
    } else if (opts.algorithm == "1bit-adam") {
      w.algorithm = std::make_unique<OneBitAdamAlgorithm>(opts.onebit_warmup);
    } else {
      ASSIGN_OR_RETURN(w.algorithm, MakeAlgorithm(opts.algorithm));
    }
    w.runtime = std::make_unique<BaguaRuntime>(&comm_world, r, w.net.get(),
                                               w.optimizer.get(),
                                               w.algorithm.get(), opts.bagua);
  }

  ConvergenceResult result;
  result.algorithm = opts.algorithm;
  result.epoch_loss.assign(opts.epochs, 0.0);

  std::vector<Status> statuses(world);
  std::vector<std::vector<double>> per_epoch(world,
                                             std::vector<double>(opts.epochs));
  ParallelFor(world, [&](size_t r) {
    auto run = [&]() -> Status {
      const size_t batches =
          dataset.BatchesPerEpoch(static_cast<int>(r), world, opts.batch_size);
      if (batches == 0) {
        return Status::InvalidArgument("shard smaller than one batch");
      }
      for (size_t epoch = 0; epoch < opts.epochs; ++epoch) {
        double sum = 0.0;
        for (size_t b = 0; b < batches; ++b) {
          Tensor x, y;
          RETURN_IF_ERROR(dataset.GetShardBatch(static_cast<int>(r), world,
                                                epoch, b, opts.batch_size, &x,
                                                &y));
          ASSIGN_OR_RETURN(const double loss,
                           workers[r].runtime->TrainStepCE(x, y));
          sum += loss;
        }
        per_epoch[r][epoch] = sum / static_cast<double>(batches);
      }
      return workers[r].runtime->Finish();
    };
    statuses[r] = run();
  });
  for (const Status& s : statuses) RETURN_IF_ERROR(s);

  for (size_t e = 0; e < opts.epochs; ++e) {
    double sum = 0.0;
    for (int r = 0; r < world; ++r) sum += per_epoch[r][e];
    result.epoch_loss[e] = sum / world;
    if (!std::isfinite(result.epoch_loss[e]) ||
        result.epoch_loss[e] > 50.0 * result.epoch_loss[0] + 50.0) {
      result.diverged = true;
    }
  }

  // Full-dataset accuracy of rank 0's final model.
  Tensor all_x, all_y;
  RETURN_IF_ERROR(dataset.GetAll(&all_x, &all_y));
  Tensor logits;
  RETURN_IF_ERROR(workers[0].net->Forward(all_x, &logits));
  ASSIGN_OR_RETURN(const double acc, Accuracy(logits, all_y));
  result.epoch_accuracy.push_back(acc);
  return result;
}

}  // namespace bagua
