#include "harness/trainer.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>

#include "algorithms/algorithms.h"
#include "algorithms/registry.h"
#include "base/logging.h"
#include "base/parallel.h"
#include "base/strings.h"
#include "base/sync.h"
#include "compress/qsgd.h"
#include "core/runtime.h"
#include "faults/faulty_transport.h"
#include "transport/delay.h"
#include "model/checkpoint.h"
#include "model/loss.h"
#include "model/net.h"
#include "trace/trace.h"

namespace bagua {

namespace {

struct WorkerState {
  std::unique_ptr<Net> net;
  std::unique_ptr<Optimizer> optimizer;
  std::unique_ptr<Algorithm> algorithm;
  std::unique_ptr<BaguaRuntime> runtime;
};

}  // namespace

Result<ConvergenceResult> RunConvergence(const ConvergenceOptions& opts) {
  const int world = opts.topo.world_size();

  // Size the shared intra-op kernel pool before any worker rank spawns
  // (resizing mid-run is not allowed). The kernels are byte-deterministic
  // in the thread count, so this knob changes wall time only.
  if (opts.bagua.intra_op_threads > 0) {
    SetIntraOpThreads(opts.bagua.intra_op_threads);
  }

  // With a fault plan, the wire is a FaultyTransport decorator: seeded
  // drops/dups/corruption below the messaging API, hardening above it,
  // crash schedules consumed by this harness.
  FaultyTransport* faulty = nullptr;
  std::unique_ptr<CommWorld> comm_world_holder;
  if (opts.faults.empty()) {
    if (opts.link_latency_s > 0.0 || opts.link_byte_s > 0.0) {
      // Clean run over a wire that costs real time: every delivered
      // message sleeps for its latency, giving the async comm engine
      // actual blocking to hide. Results stay bitwise-identical.
      comm_world_holder = std::make_unique<CommWorld>(
          opts.topo, opts.seed,
          std::make_unique<WireDelayTransport>(world, opts.link_latency_s,
                                               opts.link_byte_s));
    } else {
      comm_world_holder = std::make_unique<CommWorld>(opts.topo, opts.seed);
    }
  } else {
    auto transport = std::make_unique<FaultyTransport>(
        world, opts.faults, opts.topo, NetworkConfig());
    faulty = transport.get();
    comm_world_holder = std::make_unique<CommWorld>(opts.topo, opts.seed,
                                                    std::move(transport));
  }
  CommWorld& comm_world = *comm_world_holder;
  SyntheticClassification dataset(opts.data);

  // Model dims: input must match the dataset.
  std::vector<size_t> dims = opts.dims;
  dims.front() = opts.data.dim;
  dims.back() = opts.data.classes;

  const bool use_adam = opts.adam || opts.algorithm == "1bit-adam";

  // Async needs one shared server sized to the model.
  std::shared_ptr<ShardedParameterServer> server;
  if (opts.algorithm == "async" || opts.algorithm == "async-lp") {
    Net probe = Net::Mlp(dims);
    server = std::make_shared<ShardedParameterServer>(
        probe.NumParams(), std::max(1, opts.topo.num_nodes), world);
  }

  auto make_algorithm = [&]() -> Result<std::unique_ptr<Algorithm>> {
    if (opts.algorithm == "async") {
      return std::unique_ptr<Algorithm>(
          new AsyncPsAlgorithm(server, opts.lr));
    }
    if (opts.algorithm == "async-lp") {
      static const QsgdCompressor kAsyncLpCodec(8);
      return std::unique_ptr<Algorithm>(
          new AsyncPsAlgorithm(server, opts.lr, &kAsyncLpCodec));
    }
    if (opts.algorithm == "1bit-adam") {
      return std::unique_ptr<Algorithm>(
          new OneBitAdamAlgorithm(opts.onebit_warmup));
    }
    return MakeAlgorithm(opts.algorithm);
  };

  std::vector<WorkerState> workers(world);
  // (Re)constructs worker r's full state: fresh model, optimizer,
  // algorithm instance and runtime — exactly what a respawned process
  // would rebuild before loading its checkpoint.
  auto build_worker = [&](int r) -> Status {
    WorkerState& w = workers[r];
    w.runtime.reset();
    w.net = std::make_unique<Net>(Net::Mlp(dims));
    w.net->InitParams(MixSeed(opts.seed, 17));
    if (use_adam) {
      w.optimizer = std::make_unique<AdamOptimizer>(opts.lr);
    } else {
      w.optimizer = std::make_unique<SgdOptimizer>(opts.lr);
    }
    ASSIGN_OR_RETURN(w.algorithm, make_algorithm());
    w.runtime = std::make_unique<BaguaRuntime>(&comm_world, r, w.net.get(),
                                               w.optimizer.get(),
                                               w.algorithm.get(), opts.bagua);
    return Status::OK();
  };
  for (int r = 0; r < world; ++r) {
    RETURN_IF_ERROR(build_worker(r));
  }

  // Crash-plan validation: recoverable crashes replay steps from the last
  // checkpoint, which only barrier-free (async-family) algorithms absorb.
  if (faulty != nullptr) {
    for (int r = 0; r < world; ++r) {
      const FaultRule* crash = faulty->CrashRuleFor(r);
      if (crash == nullptr || !crash->recover) continue;
      if (opts.checkpoint_every == 0) {
        return Status::InvalidArgument(
            "recoverable crash requires checkpoint_every > 0");
      }
      if (workers[r].algorithm->BarrierGroup(world) != 1) {
        return Status::InvalidArgument(StrFormat(
            "recoverable crash needs a barrier-free algorithm; '%s' "
            "rendezvouses %d workers (use recover=false: decentralized "
            "peers skip the dead rank, synchronous runs abort cleanly)",
            opts.algorithm.c_str(), workers[r].algorithm->BarrierGroup(world)));
      }
    }
  }

  auto ckpt_path = [&](int r) {
    return StrFormat("%s/bagua_ckpt_%s_seed%llu_r%d.bin",
                     opts.checkpoint_dir.c_str(), opts.algorithm.c_str(),
                     static_cast<unsigned long long>(opts.seed), r);
  };

  ConvergenceResult result;
  result.algorithm = opts.algorithm;
  result.epoch_loss.assign(opts.epochs, 0.0);

  TransportGroup* group = comm_world.group();
  std::vector<Status> statuses(world);
  std::vector<std::vector<double>> per_epoch(world,
                                             std::vector<double>(opts.epochs));
  std::vector<size_t> epochs_done(world, 0);
  std::vector<uint8_t> permanently_dead(world, 0);
  std::atomic<size_t> recoveries{0};

  const auto wall_begin = std::chrono::steady_clock::now();
  ParallelFor(world, [&](size_t r) {
    auto run = [&]() -> Status {
      const size_t batches =
          dataset.BatchesPerEpoch(static_cast<int>(r), world, opts.batch_size);
      if (batches == 0) {
        return Status::InvalidArgument("shard smaller than one batch");
      }
      const size_t total = opts.epochs * batches;
      std::vector<double> step_loss(total, 0.0);

      const FaultRule* crash =
          faulty != nullptr ? faulty->CrashRuleFor(static_cast<int>(r))
                            : nullptr;
      bool crashed_once = false;
      size_t last_ckpt_step = 0;
      if (opts.checkpoint_every > 0) {
        TraceSpan span(static_cast<int>(r), TraceStream::kCheckpoint,
                       "checkpoint.save");
        RETURN_IF_ERROR(SaveCheckpoint(workers[r].net.get(),
                                       ckpt_path(static_cast<int>(r))));
      }

      size_t step = 0;
      while (step < total) {
        if (crash != nullptr && !crashed_once && step == crash->at_step) {
          // The worker dies here: its inbox is lost and peers see DataLoss
          // instead of hanging on it.
          crashed_once = true;
          group->MarkDead(static_cast<int>(r));
          TraceIncrement(static_cast<int>(r), "trainer.crashes");
          if (!crash->recover) {
            permanently_dead[r] = 1;
            epochs_done[r] = step / batches;
            return Status::OK();
          }
          // Respawn: rebuild process state from scratch, reload the last
          // checkpoint, rejoin the membership, rewind to the checkpointed
          // step and re-play from there.
          {
            TraceSpan span(static_cast<int>(r), TraceStream::kCheckpoint,
                           "recover", /*bytes=*/0,
                           static_cast<int>(crash->at_step));
            RETURN_IF_ERROR(build_worker(static_cast<int>(r)));
            RETURN_IF_ERROR(LoadCheckpoint(workers[r].net.get(),
                                           ckpt_path(static_cast<int>(r))));
            group->MarkAlive(static_cast<int>(r));
          }
          TraceIncrement(static_cast<int>(r), "trainer.recoveries");
          recoveries.fetch_add(1);
          step = last_ckpt_step;
          continue;
        }
        const size_t epoch = step / batches;
        const size_t b = step % batches;
        Tensor x, y;
        RETURN_IF_ERROR(dataset.GetShardBatch(static_cast<int>(r), world,
                                              epoch, b, opts.batch_size, &x,
                                              &y));
        ASSIGN_OR_RETURN(const double loss,
                         workers[r].runtime->TrainStepCE(x, y));
        step_loss[step] = loss;
        ++step;
        if (opts.checkpoint_every > 0 && step % opts.checkpoint_every == 0) {
          TraceSpan span(static_cast<int>(r), TraceStream::kCheckpoint,
                         "checkpoint.save");
          RETURN_IF_ERROR(SaveCheckpoint(workers[r].net.get(),
                                         ckpt_path(static_cast<int>(r))));
          last_ckpt_step = step;
        }
      }
      for (size_t e = 0; e < opts.epochs; ++e) {
        double sum = 0.0;
        for (size_t k = 0; k < batches; ++k) sum += step_loss[e * batches + k];
        per_epoch[r][e] = sum / static_cast<double>(batches);
      }
      epochs_done[r] = opts.epochs;
      return workers[r].runtime->Finish();
    };
    statuses[r] = run();
    if (!statuses[r].ok()) {
      // A failing worker must not leave peers blocked on its messages:
      // declare it dead so their receives fail fast and the whole run
      // aborts cleanly instead of deadlocking.
      group->MarkDead(static_cast<int>(r));
    }
  });
  result.train_wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_begin)
                            .count();
  const size_t rank0_steps =
      opts.epochs * dataset.BatchesPerEpoch(0, world, opts.batch_size);
  if (rank0_steps > 0) {
    result.step_wall_s = result.train_wall_s / static_cast<double>(rank0_steps);
  }
  for (const Status& s : statuses) RETURN_IF_ERROR(s);

  result.recoveries = recoveries.load();
  for (int r = 0; r < world; ++r) {
    if (permanently_dead[r]) ++result.failed_workers;
  }
  if (faulty != nullptr) {
    result.fault_stats = faulty->stats();
    result.fault_penalty_s = faulty->VirtualPenaltySeconds();
  }

  for (size_t e = 0; e < opts.epochs; ++e) {
    double sum = 0.0;
    int contributors = 0;
    for (int r = 0; r < world; ++r) {
      if (epochs_done[r] <= e) continue;  // dead before finishing this epoch
      sum += per_epoch[r][e];
      ++contributors;
    }
    if (contributors == 0) {
      return Status::Internal("no worker survived to epoch " +
                              std::to_string(e));
    }
    result.epoch_loss[e] = sum / contributors;
    if (!std::isfinite(result.epoch_loss[e]) ||
        result.epoch_loss[e] > 50.0 * result.epoch_loss[0] + 50.0) {
      result.diverged = true;
    }
  }

  // Full-dataset accuracy of the first surviving worker's final model.
  int reporter = -1;
  for (int r = 0; r < world; ++r) {
    if (!permanently_dead[r]) {
      reporter = r;
      break;
    }
  }
  if (reporter < 0) return Status::Internal("every worker died");
  Tensor all_x, all_y;
  RETURN_IF_ERROR(dataset.GetAll(&all_x, &all_y));
  Tensor logits;
  RETURN_IF_ERROR(workers[reporter].net->Forward(all_x, &logits));
  ASSIGN_OR_RETURN(const double acc, Accuracy(logits, all_y));
  result.epoch_accuracy.push_back(acc);
  for (const Param& p : workers[reporter].net->params()) {
    const float* v = p.value->data();
    result.final_params.insert(result.final_params.end(), v,
                               v + p.value->numel());
  }
  return result;
}

}  // namespace bagua
