#ifndef BAGUA_HARNESS_TRAINER_H_
#define BAGUA_HARNESS_TRAINER_H_

#include <string>
#include <vector>

#include "core/options.h"
#include "faults/fault_plan.h"
#include "model/data.h"
#include "sim/topology.h"

namespace bagua {

/// \brief Configuration of one convergence experiment (Figs. 5-6): real
/// training of a real model through the chosen algorithm on a simulated
/// cluster of worker threads.
struct ConvergenceOptions {
  /// Algorithm name per algorithms/registry.h, plus "async".
  std::string algorithm = "allreduce";
  ClusterTopology topo = ClusterTopology::Make(8, 1);
  BaguaOptions bagua;
  /// MLP dims for the task model.
  std::vector<size_t> dims = {32, 64, 32, 8};
  double lr = 0.05;
  bool adam = false;  ///< use Adam instead of SGD (forced on for 1bit-adam)
  size_t epochs = 10;
  size_t batch_size = 16;
  uint64_t seed = 2021;
  /// Warmup steps for 1-bit Adam (the paper's recipe warms up for a
  /// sizeable fraction of training before switching to compression).
  uint64_t onebit_warmup = 64;
  SyntheticClassification::Options data;

  /// Seeded fault schedule, applied through a FaultyTransport decorator
  /// when non-empty. Message faults (drop/corrupt/...) hit the wire;
  /// kCrash rules are executed by the harness: the worker is killed
  /// (MarkDead) at its local step `at_step` and — when `recover` is set —
  /// respawned from its last checkpoint and re-admitted.
  ///
  /// Recoverable crashes require `checkpoint_every > 0` and an algorithm
  /// with no rendezvous barrier (BarrierGroup == 1, i.e. the async
  /// family): a rewound worker re-plays steps, which a lockstep collective
  /// cannot absorb. Permanent crashes (recover = false) work everywhere —
  /// decentralized peers skip the dead member and keep training,
  /// centralized synchronous runs detect it (DataLoss) and abort cleanly.
  FaultPlan faults;
  /// Real wall-clock wire delay charged on every delivered message
  /// (WireDelayTransport): `link_latency_s + bytes * link_byte_s` of
  /// actual sleeping on the receive side. Payloads and message order are
  /// untouched, so training results are bitwise-identical with or without
  /// it — only `train_wall_s` moves. This is what gives the async comm
  /// engine real blocking time to hide (scripts/overlap_gate.sh).
  /// Ignored when a fault plan is active (FaultyTransport owns the wire
  /// and prices its own virtual delays).
  double link_latency_s = 0.0;
  double link_byte_s = 0.0;
  /// Checkpoint each worker's model every K steps (0 = never). The crash
  /// recovery granularity: a respawned worker rewinds to the last multiple
  /// of K it completed. Optimizer slots are not checkpointed (plain-SGD
  /// recovery is exact; Adam moments restart cold).
  size_t checkpoint_every = 0;
  /// Directory for checkpoint files (one per rank).
  std::string checkpoint_dir = "/tmp";

  ConvergenceOptions() {
    data.num_samples = 4096;
    data.dim = 32;
    data.classes = 8;
    data.seed = 7;
  }
};

/// \brief Per-epoch trajectory of one run.
struct ConvergenceResult {
  std::string algorithm;
  std::vector<double> epoch_loss;      ///< mean training loss per epoch
  std::vector<double> epoch_accuracy;  ///< rank-0 full-dataset accuracy
  bool diverged = false;               ///< loss became NaN/inf or exploded

  /// Wall-clock seconds of the training phase (all workers, spawn to
  /// join) and the per-step mean derived from it. The executor-comparison
  /// gate reads these; everything above is wall-free and deterministic.
  double train_wall_s = 0.0;
  double step_wall_s = 0.0;

  /// The reporting worker's final parameters, flattened layer-major —
  /// recorded so tests can assert the async comm engine is bitwise
  /// equivalent to the synchronous executor, not merely loss-close.
  std::vector<float> final_params;

  /// Fault-run bookkeeping (all zero on clean runs).
  FaultStats fault_stats;       ///< injector/recovery counters
  double fault_penalty_s = 0.0; ///< virtual seconds the faults cost
  size_t recoveries = 0;        ///< workers respawned from checkpoint
  size_t failed_workers = 0;    ///< workers that died permanently
};

/// \brief Runs the experiment: spawns one thread per worker, trains
/// `epochs` epochs, returns the loss/accuracy trajectory.
Result<ConvergenceResult> RunConvergence(const ConvergenceOptions& opts);

}  // namespace bagua

#endif  // BAGUA_HARNESS_TRAINER_H_
