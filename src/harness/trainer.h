#ifndef BAGUA_HARNESS_TRAINER_H_
#define BAGUA_HARNESS_TRAINER_H_

#include <string>
#include <vector>

#include "core/options.h"
#include "model/data.h"
#include "sim/topology.h"

namespace bagua {

/// \brief Configuration of one convergence experiment (Figs. 5-6): real
/// training of a real model through the chosen algorithm on a simulated
/// cluster of worker threads.
struct ConvergenceOptions {
  /// Algorithm name per algorithms/registry.h, plus "async".
  std::string algorithm = "allreduce";
  ClusterTopology topo = ClusterTopology::Make(8, 1);
  BaguaOptions bagua;
  /// MLP dims for the task model.
  std::vector<size_t> dims = {32, 64, 32, 8};
  double lr = 0.05;
  bool adam = false;  ///< use Adam instead of SGD (forced on for 1bit-adam)
  size_t epochs = 10;
  size_t batch_size = 16;
  uint64_t seed = 2021;
  /// Warmup steps for 1-bit Adam (the paper's recipe warms up for a
  /// sizeable fraction of training before switching to compression).
  uint64_t onebit_warmup = 64;
  SyntheticClassification::Options data;

  ConvergenceOptions() {
    data.num_samples = 4096;
    data.dim = 32;
    data.classes = 8;
    data.seed = 7;
  }
};

/// \brief Per-epoch trajectory of one run.
struct ConvergenceResult {
  std::string algorithm;
  std::vector<double> epoch_loss;      ///< mean training loss per epoch
  std::vector<double> epoch_accuracy;  ///< rank-0 full-dataset accuracy
  bool diverged = false;               ///< loss became NaN/inf or exploded
};

/// \brief Runs the experiment: spawns one thread per worker, trains
/// `epochs` epochs, returns the loss/accuracy trajectory.
Result<ConvergenceResult> RunConvergence(const ConvergenceOptions& opts);

}  // namespace bagua

#endif  // BAGUA_HARNESS_TRAINER_H_
