#ifndef BAGUA_HARNESS_TIMING_H_
#define BAGUA_HARNESS_TIMING_H_

#include <functional>
#include <string>
#include <vector>

#include "core/algorithm.h"
#include "core/options.h"
#include "model/profiles.h"
#include "sched/plan.h"
#include "sim/calibration.h"
#include "sim/des.h"
#include "sim/network.h"
#include "sim/topology.h"

namespace bagua {

/// \brief Everything the epoch-time model needs about the experiment.
struct TimingConfig {
  ClusterTopology topo = ClusterTopology::Paper();
  NetworkConfig net = NetworkConfig::Tcp25();
  DeviceConfig dev;
  ModelProfile model;
  /// Coefficient of variation of per-iteration compute time across workers
  /// of a busy production cluster. A synchronous barrier over G workers
  /// waits for the slowest, costing ~cv * sqrt(2 ln G) * compute per
  /// iteration; algorithms that rendezvous with fewer peers pay less. This
  /// is the mechanism behind the paper's bandwidth-independent Async/Decen
  /// speedups and its straggler experiment (§4.3).
  double jitter_cv = 0.115;
};

/// \brief A system's execution strategy: its cost model plus how its
/// StepPlan is built. Both the BAGUA runtime (under any algorithm and any
/// O/F/H setting) and the three baselines compile down to one of these, so
/// every number in Tables 3-5 and Fig. 7 comes from the same simulator.
///
/// The schedule itself lives in the StepPlan IR (sched/plan.h):
/// `plan_builder`, when set (the baselines compose it from plan
/// transforms), constructs the plan directly; otherwise the boolean shape
/// fields below are handed to sched::BuildPricingPlan verbatim. Either
/// way EstimateEpoch prices a plan — it interprets no schedule flags of
/// its own.
struct SystemSpec {
  std::string name;
  /// Network time of one bucket communication (numel elements).
  std::function<double(size_t)> comm_cost;
  /// Device-side codec work (compression, error compensation) per bucket.
  std::function<double(size_t)> codec_cost = [](size_t) { return 0.0; };
  /// Bucket payload target; ignored when per_tensor is set.
  size_t bucket_bytes = 10u << 20;
  /// F = 0: communicate tensor by tensor instead of fused buckets.
  bool per_tensor = false;
  /// O: start a bucket's communication as soon as its gradients are ready.
  bool overlap_backward = true;
  /// BytePS-style: the next iteration's forward may start for layers whose
  /// parameters have already been pulled.
  bool overlap_forward = false;
  /// Async: communication never blocks on (or blocks) local compute.
  bool async = false;
  /// Decentralized pattern: the local update precedes communication.
  bool update_before_comm = false;
  /// Memory passes per element of the optimizer update (SGD ~3, Adam ~5).
  double update_passes = 3.0;
  /// Extra serialized time per full-model exchange (BytePS summation
  /// service on the host CPU), seconds per full gradient.
  double server_cpu_s = 0.0;
  /// Host-side cost per communication unit on the training thread (hook
  /// dispatch, pack/unpack launches, allocator traffic). Fused buckets pay
  /// it once per bucket; the F=0 per-tensor path pays it per tensor, which
  /// is what makes unfused BERT-LARGE (~400 tensors) collapse in Table 5.
  double host_per_unit_s = 1e-4;
  /// Workers that must rendezvous per iteration (-1 = whole world).
  int barrier_group = -1;
  /// Fraction of iterations that pay the barrier (LocalSGD: 1/τ).
  double barrier_freq = 1.0;
  /// Builds this system's StepPlan (a composition of sched/plan.h
  /// transforms). Unset: BuildPricingPlan over the shape fields above.
  PlanBuilder plan_builder;
};

/// \brief Result of the epoch-time model.
struct EpochEstimate {
  std::string system;
  double iteration_s = 0.0;    ///< steady-state time per iteration
  double epoch_s = 0.0;        ///< iteration_s * iterations
  size_t iterations = 0;
  double compute_s = 0.0;      ///< per-iteration device busy time
  double comm_s = 0.0;         ///< per-iteration comm-stream busy time
  /// Planned backward∥comm overlap of the steady-state iteration:
  /// communication seconds inside the backward window, and that as a
  /// fraction of the iteration's total communication (sched/pricer.h).
  double overlap_s = 0.0;
  double overlap_frac = 0.0;
};

/// \brief Prices one epoch of `cfg.model` under `spec`: builds the spec's
/// StepPlan, derives per-op durations from the calibration + cost model,
/// and hands both to sched::PricePlan (the DES interpreter over the same
/// IR the real executor runs). Steady-state pipelining across iterations —
/// the whole point of the O/BytePS scheduling tricks — is captured by the
/// pricer's three-iteration graph.
EpochEstimate EstimateEpoch(const TimingConfig& cfg, const SystemSpec& spec);

/// \brief Compiles a BAGUA algorithm + optimizer-framework options into a
/// SystemSpec (what the execution optimizer's profiling phase effectively
/// does for the schedule).
SystemSpec BaguaSpec(const TimingConfig& cfg, const Algorithm& algo,
                     const BaguaOptions& options);

}  // namespace bagua

#endif  // BAGUA_HARNESS_TIMING_H_
