#ifndef BAGUA_HARNESS_AUTOTUNE_H_
#define BAGUA_HARNESS_AUTOTUNE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/algorithm.h"
#include "harness/timing.h"

namespace bagua {

/// \brief Instantiates an algorithm usable for *timing* (cost-model)
/// purposes: every registry name plus "async" (which needs a live
/// parameter server for its data path but not for its cost model).
std::unique_ptr<Algorithm> MakeTimingAlgorithm(const std::string& name);

/// Names ranked by the auto-tuner (registry + "async").
std::vector<std::string> TunableAlgorithms();

/// \brief One entry of the auto-tuner's ranking.
struct AlgorithmRecommendation {
  std::string algorithm;
  double epoch_s = 0.0;
  double speedup_vs_allreduce = 1.0;
  /// Set when the algorithm is known to risk degraded convergence on this
  /// workload class (the paper's Fig. 6 findings, encoded).
  bool convergence_caution = false;
  std::string note;
};

/// \brief The seed of the "principled auto-tuning system" the paper's
/// Limitations section calls for: ranks every algorithm by modeled epoch
/// time under the given cluster/network/model, and annotates each with the
/// convergence caveats the tradeoff study (Fig. 6) established:
///   - 1-bit Adam requires an Adam workload and a long warmup; it diverged
///     on the paper's conv-style tasks;
///   - decentralized algorithms showed a small accuracy drop on VGG16;
///   - QSGD degraded on LSTM+AlexNet;
///   - async embeds gradient staleness (gap on BERT-LARGE).
std::vector<AlgorithmRecommendation> RankAlgorithms(
    const TimingConfig& cfg, const BaguaOptions& options = BaguaOptions());

/// \brief Top-ranked algorithm; with `require_safe`, the fastest algorithm
/// WITHOUT a convergence caution for this workload.
Result<AlgorithmRecommendation> RecommendAlgorithm(
    const TimingConfig& cfg, bool require_safe = true,
    const BaguaOptions& options = BaguaOptions());

}  // namespace bagua

#endif  // BAGUA_HARNESS_AUTOTUNE_H_
