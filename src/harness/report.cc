#include "harness/report.h"

#include <algorithm>

#include "base/logging.h"

namespace bagua {

ReportTable::ReportTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void ReportTable::AddRow(std::vector<std::string> cells) {
  BAGUA_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string ReportTable::ToMarkdown() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < row.size(); ++c) {
      line += " " + row[c] + std::string(widths[c] - row[c].size(), ' ') +
              " |";
    }
    return line + "\n";
  };
  std::string out = render_row(headers_);
  out += "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    out += std::string(widths[c] + 2, '-') + "|";
  }
  out += "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string ReportTable::ToCsv() const {
  auto join = [](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += ",";
      line += row[c];
    }
    return line + "\n";
  };
  std::string out = join(headers_);
  for (const auto& row : rows_) out += join(row);
  return out;
}

void ReportTable::Print(FILE* out) const {
  std::fputs(ToMarkdown().c_str(), out);
  std::fputc('\n', out);
}

void PrintSection(const std::string& title, FILE* out) {
  std::fprintf(out, "\n## %s\n\n", title.c_str());
}

}  // namespace bagua
