#include "harness/report.h"

#include <algorithm>
#include <map>

#include "base/logging.h"
#include "base/strings.h"

namespace bagua {

ReportTable::ReportTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void ReportTable::AddRow(std::vector<std::string> cells) {
  BAGUA_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string ReportTable::ToMarkdown() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < row.size(); ++c) {
      line += " " + row[c] + std::string(widths[c] - row[c].size(), ' ') +
              " |";
    }
    return line + "\n";
  };
  std::string out = render_row(headers_);
  out += "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    out += std::string(widths[c] + 2, '-') + "|";
  }
  out += "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string ReportTable::ToCsv() const {
  auto join = [](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += ",";
      line += row[c];
    }
    return line + "\n";
  };
  std::string out = join(headers_);
  for (const auto& row : rows_) out += join(row);
  return out;
}

void ReportTable::Print(FILE* out) const {
  std::fputs(ToMarkdown().c_str(), out);
  std::fputc('\n', out);
}

void PrintSection(const std::string& title, FILE* out) {
  std::fprintf(out, "\n## %s\n\n", title.c_str());
}

namespace {

bool IsBucketCommSpan(const TraceEvent& ev) {
  return ev.stream == TraceStream::kComm &&
         ev.name.rfind("bucket", 0) == 0;
}

bool IsBackwardSegment(const TraceEvent& ev) {
  return ev.stream == TraceStream::kCompute && ev.name == "bwd.seg";
}

OverlapAccounting AccountRank(const std::vector<TraceEvent>& events) {
  OverlapAccounting acc;
  std::vector<const TraceEvent*> segments;
  for (const TraceEvent& ev : events) {
    if (IsBackwardSegment(ev)) segments.push_back(&ev);
  }
  for (const TraceEvent& ev : events) {
    if (!IsBucketCommSpan(ev)) continue;
    acc.comm_us += ev.wall_end_us - ev.wall_begin_us;
    // Backward segments are disjoint per rank (the worker thread closes
    // one before opening the next), so summing intersections never
    // double-counts.
    for (const TraceEvent* seg : segments) {
      acc.overlapped_us +=
          std::max(0.0, std::min(ev.wall_end_us, seg->wall_end_us) -
                            std::max(ev.wall_begin_us, seg->wall_begin_us));
    }
  }
  return acc;
}

}  // namespace

OverlapAccounting MeasuredOverlap(const Tracer& tracer, int rank) {
  OverlapAccounting total;
  for (int r = 0; r < tracer.world_size(); ++r) {
    if (rank >= 0 && r != rank) continue;
    const OverlapAccounting acc = AccountRank(tracer.Events(r));
    total.comm_us += acc.comm_us;
    total.overlapped_us += acc.overlapped_us;
  }
  return total;
}

std::string RenderTraceSummary(const Tracer& tracer) {
  ReportTable ranks({"rank", "spans", "virtual ticks", "wall ms",
                     "comm bytes", "queue waits", "bwd-comm overlap",
                     "fault spans"});
  for (int r = 0; r < tracer.world_size(); ++r) {
    const auto events = tracer.Events(r);
    if (events.empty() && tracer.metrics(r).CounterSnapshot().empty()) {
      continue;  // rank slot never produced anything — keep the table short
    }
    uint64_t ticks = 0, comm_bytes = 0, fault_spans = 0, queue_waits = 0;
    double wall_us = 0.0;
    for (const TraceEvent& ev : events) {
      ticks = std::max(ticks, ev.vt_end);
      wall_us = std::max(wall_us, ev.wall_end_us);
      if (ev.stream == TraceStream::kComm) comm_bytes += ev.bytes;
      if (ev.stream == TraceStream::kCommQueue) ++queue_waits;
      if (ev.stream == TraceStream::kFault) ++fault_spans;
    }
    const OverlapAccounting overlap = AccountRank(events);
    ranks.AddRow({std::to_string(r), std::to_string(events.size()),
                  std::to_string(ticks), StrFormat("%.1f", wall_us / 1e3),
                  std::to_string(comm_bytes), std::to_string(queue_waits),
                  StrFormat("%.0f%%", 100.0 * overlap.fraction()),
                  std::to_string(fault_spans)});
  }

  // Counter totals across ranks, name-sorted (std::map) for determinism.
  std::map<std::string, uint64_t> totals;
  for (int r = 0; r < tracer.world_size(); ++r) {
    for (const auto& [name, value] : tracer.metrics(r).CounterSnapshot()) {
      totals[name] += value;
    }
  }
  ReportTable counters({"counter", "total"});
  for (const auto& [name, value] : totals) {
    counters.AddRow({name, std::to_string(value)});
  }

  // Compute-kernel wall time (process-wide, trace/metrics.h): rendered
  // alongside the comm-side trace so kernel speedups are observable, but
  // never merged into the deterministic Chrome JSON.
  std::string out = ranks.ToMarkdown() + "\n" + counters.ToMarkdown();
  struct KernelRow {
    uint64_t calls = 0, ns = 0, flops = 0;
  };
  std::map<std::string, KernelRow> kernels;
  for (const auto& [name, value] : KernelMetrics().CounterSnapshot()) {
    // Names look like kernel.<kernel>.<field>.
    if (name.rfind("kernel.", 0) != 0) continue;
    const size_t dot = name.rfind('.');
    const std::string kernel = name.substr(7, dot - 7);
    const std::string field = name.substr(dot + 1);
    if (field == "calls") kernels[kernel].calls = value;
    if (field == "ns") kernels[kernel].ns = value;
    if (field == "flops") kernels[kernel].flops = value;
  }
  if (!kernels.empty()) {
    ReportTable ktable({"kernel", "calls", "wall ms", "GFLOP/s"});
    for (const auto& [kernel, row] : kernels) {
      const double ms = static_cast<double>(row.ns) / 1e6;
      const double gflops =
          row.ns > 0 ? static_cast<double>(row.flops) / row.ns : 0.0;
      ktable.AddRow({kernel, std::to_string(row.calls),
                     StrFormat("%.2f", ms), StrFormat("%.2f", gflops)});
    }
    out += "\n" + ktable.ToMarkdown();
  }
  return out;
}

}  // namespace bagua
