#include "harness/timing.h"

#include <algorithm>
#include <cmath>

#include "base/strings.h"
#include "sched/pricer.h"

namespace bagua {

namespace {

/// The spec's boolean shape fields, handed to the plan builder verbatim —
/// a field-for-field translation, not an interpretation: every schedule
/// decision (what overlaps what, what waits on what) happens inside
/// sched/plan.cc transforms and is carried by the resulting StepPlan.
ScheduleShape ShapeOf(const SystemSpec& spec) {
  ScheduleShape shape;
  shape.bucket_bytes = spec.bucket_bytes;
  shape.per_tensor = spec.per_tensor;
  shape.overlap_backward = spec.overlap_backward;
  shape.overlap_forward = spec.overlap_forward;
  shape.async = spec.async;
  shape.update_before_comm = spec.update_before_comm;
  shape.server = spec.server_cpu_s > 0.0;
  return shape;
}

}  // namespace

EpochEstimate EstimateEpoch(const TimingConfig& cfg, const SystemSpec& spec) {
  const ModelProfile& model = cfg.model;
  const double batch = static_cast<double>(model.train.batch_per_device);
  const double eff = model.train.efficiency;

  const StepPlan plan = spec.plan_builder
                            ? spec.plan_builder(model)
                            : BuildPricingPlan(model, ShapeOf(spec));

  // Per-op durations: calibration constants + the spec's cost model. The
  // plan says what runs when; these say how long each op takes.
  PlanCosts costs;
  costs.fwd_s = [&](size_t b) {
    // fwd is ~1/3 of the block's fwd+bwd FLOPs.
    const double flops = batch * model.blocks[b].flops / 3.0;
    return cfg.dev.ComputeTime(flops, eff) + cfg.dev.kernel_overhead_s;
  };
  costs.bwd_s = [&](size_t b) {
    const double flops = batch * model.blocks[b].flops * 2.0 / 3.0;
    return cfg.dev.ComputeTime(flops, eff) + cfg.dev.kernel_overhead_s;
  };
  costs.comm_s = [&](const PlanUnit& u) {
    return spec.comm_cost(u.numel) + spec.codec_cost(u.numel);
  };
  costs.update_s = [&](const PlanUnit& u) {
    return spec.update_passes * cfg.dev.MemPassTime(u.numel * 4.0) +
           cfg.dev.kernel_overhead_s + spec.host_per_unit_s;
  };
  costs.server_s = [&](const PlanUnit& u) {
    // The summation service reduces this unit on host CPUs, pipelined
    // with the network transfers of other units.
    return spec.server_cpu_s * u.numel /
           std::max<double>(1.0, model.TotalParams());
  };

  const PlanPrice price = PricePlan(plan, costs);

  EpochEstimate est;
  est.system = spec.name;
  est.iterations = model.IterationsPerEpoch(cfg.topo.world_size());
  est.iteration_s = price.iteration_s;
  est.compute_s = price.compute_s;
  est.comm_s = price.comm_s;
  est.overlap_s = price.overlap_s;
  est.overlap_frac = price.overlap_frac;
  // Synchronization-barrier jitter: waiting for the slowest of G workers'
  // compute, ~cv * sqrt(2 ln G) above the mean for near-Gaussian noise.
  const int group = spec.barrier_group < 0 ? cfg.topo.world_size()
                                           : std::max(1, spec.barrier_group);
  if (group > 1 && cfg.jitter_cv > 0.0) {
    est.iteration_s += spec.barrier_freq * cfg.jitter_cv *
                       std::sqrt(2.0 * std::log(static_cast<double>(group))) *
                       price.compute_s;
  }
  est.epoch_s = est.iteration_s * static_cast<double>(est.iterations);
  return est;
}

SystemSpec BaguaSpec(const TimingConfig& cfg, const Algorithm& algo,
                     const BaguaOptions& options) {
  SystemSpec spec;
  spec.name = StrFormat("bagua/%s", algo.name().c_str());
  const ClusterTopology topo = cfg.topo;
  const NetworkConfig net = cfg.net;
  const DeviceConfig dev = cfg.dev;
  const bool hier = options.hierarchical;
  spec.comm_cost = [&algo, topo, net, hier](size_t numel) {
    return algo.CommCost(numel, topo, net, hier);
  };
  spec.codec_cost = [&algo, dev](size_t numel) {
    return algo.CodecCost(numel, dev);
  };
  spec.bucket_bytes = options.bucket_bytes;
  spec.per_tensor = !options.fuse;
  spec.overlap_backward = options.overlap;
  const AlgorithmTraits traits = algo.traits();
  spec.async = !traits.synchronous;
  spec.update_before_comm = traits.update_before_comm;
  spec.update_passes = cfg.model.train.uses_adam ? 5.0 : 3.0;
  spec.barrier_group = algo.BarrierGroup(cfg.topo.world_size());
  spec.barrier_freq = algo.BarrierFreq();
  spec.host_per_unit_s = options.fuse ? 1e-4 : 1.5e-3;
  return spec;
}

}  // namespace bagua
