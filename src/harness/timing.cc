#include "harness/timing.h"

#include <algorithm>
#include <cmath>

#include "base/logging.h"
#include "base/strings.h"

namespace bagua {

namespace {

/// One communication unit of the schedule: a fused bucket or (F=0) a
/// single tensor, with the index of the *earliest* model block it covers —
/// its gradients are complete when that block's backward finishes, and the
/// next iteration's forward of that block needs its updated parameters.
struct CommUnit {
  size_t numel = 0;
  size_t first_block = 0;  ///< lowest covered block index
  size_t last_block = 0;   ///< highest covered block index
};

std::vector<CommUnit> PlanUnits(const ModelProfile& model,
                                const SystemSpec& spec) {
  std::vector<CommUnit> units;
  const size_t nblocks = model.blocks.size();
  if (spec.per_tensor) {
    // Reverse order, one unit per parameter tensor.
    for (size_t i = nblocks; i > 0; --i) {
      const auto& blk = model.blocks[i - 1];
      const int tensors = std::max(1, blk.num_tensors);
      const size_t per = blk.params / tensors;
      for (int t = 0; t < tensors; ++t) {
        size_t numel = per;
        if (t == 0) numel += blk.params - per * tensors;  // remainder
        units.push_back({numel, i - 1, i - 1});
      }
    }
    return units;
  }
  // Fused: pack individual parameter tensors (reverse block order, as
  // their gradients appear) into buckets of ~bucket_bytes, mirroring
  // PlanBuckets in the runtime. Tensors are never split across buckets.
  CommUnit current;
  bool open = false;
  size_t bytes = 0;
  for (size_t i = nblocks; i > 0; --i) {
    const auto& blk = model.blocks[i - 1];
    const int tensors = std::max(1, blk.num_tensors);
    const size_t per = blk.params / tensors;
    for (int t = 0; t < tensors; ++t) {
      size_t numel = per;
      if (t == 0) numel += blk.params - per * tensors;  // remainder
      if (!open) {
        current = {0, i - 1, i - 1};
        open = true;
        bytes = 0;
      }
      current.numel += numel;
      current.first_block = i - 1;
      bytes += numel * sizeof(float);
      if (bytes >= spec.bucket_bytes) {
        units.push_back(current);
        open = false;
      }
    }
  }
  if (open) units.push_back(current);
  return units;
}

}  // namespace

EpochEstimate EstimateEpoch(const TimingConfig& cfg, const SystemSpec& spec) {
  const ModelProfile& model = cfg.model;
  const size_t nblocks = model.blocks.size();
  const double batch = static_cast<double>(model.train.batch_per_device);
  const double eff = model.train.efficiency;

  const auto units = PlanUnits(model, spec);

  IterationSim sim;
  const int compute = sim.AddResource("compute");
  const int comm = sim.AddResource("comm");
  const bool has_server = spec.server_cpu_s > 0.0;
  const int server = has_server ? sim.AddResource("server") : -1;

  constexpr int kIters = 3;
  std::vector<int> prev_unit_done;  // per unit: op completing param update

  for (int it = 0; it < kIters; ++it) {
    // ---- forward ----
    std::vector<int> fwd_ops(nblocks);
    for (size_t b = 0; b < nblocks; ++b) {
      // fwd is ~1/3 of the block's fwd+bwd FLOPs.
      const double flops = batch * model.blocks[b].flops / 3.0;
      std::vector<int> deps;
      if (it > 0) {
        if (spec.async) {
          // Async never gates compute on communication.
        } else if (spec.overlap_forward) {
          // Needs only this block's parameters (BytePS priority pulls).
          for (size_t u = 0; u < units.size(); ++u) {
            if (units[u].first_block <= b && b <= units[u].last_block) {
              deps.push_back(prev_unit_done[u]);
            }
          }
        } else {
          // Must wait for the previous iteration to fully finish.
          for (int op : prev_unit_done) deps.push_back(op);
        }
      }
      fwd_ops[b] = sim.AddOp(StrFormat("i%d.fwd%zu", it, b), compute,
                             cfg.dev.ComputeTime(flops, eff) +
                                 cfg.dev.kernel_overhead_s,
                             std::move(deps));
    }
    // ---- backward (reverse), submitting each unit's update/communication
    // ops as soon as the unit's gradients complete, so the FIFO compute
    // stream interleaves updates with the remaining backward work (exactly
    // the schedule the execution optimizer produces) ----
    std::vector<int> bwd_ops(nblocks, -1);
    std::vector<int> unit_done(units.size(), -1);
    std::vector<size_t> deferred_units;  // fired after backward when O = 0

    auto submit_unit = [&](size_t u) {
      const CommUnit& unit = units[u];
      std::vector<int> grad_ready;
      if (spec.async && spec.overlap_backward) {
        // Communication rides its own stream; FIFO ordering only.
      } else if (spec.overlap_backward) {
        grad_ready.push_back(bwd_ops[unit.first_block]);
      } else {
        grad_ready.push_back(bwd_ops[0]);  // whole backward done
      }
      const double update_s =
          spec.update_passes * cfg.dev.MemPassTime(unit.numel * 4.0) +
          cfg.dev.kernel_overhead_s + spec.host_per_unit_s;
      const double comm_s =
          spec.comm_cost(unit.numel) + spec.codec_cost(unit.numel);
      if (spec.update_before_comm) {
        const int upd = sim.AddOp(StrFormat("i%d.upd%zu", it, u), compute,
                                  update_s, grad_ready);
        unit_done[u] = sim.AddOp(StrFormat("i%d.comm%zu", it, u), comm,
                                 comm_s, {upd});
      } else {
        std::vector<int> upd_deps;
        const int c = sim.AddOp(StrFormat("i%d.comm%zu", it, u), comm, comm_s,
                                grad_ready);
        upd_deps.push_back(c);
        if (has_server) {
          // The summation service reduces this unit on host CPUs, pipelined
          // with the network transfers of other units.
          const double cpu_s = spec.server_cpu_s * unit.numel /
                               std::max<double>(1.0, model.TotalParams());
          upd_deps.push_back(sim.AddOp(StrFormat("i%d.srv%zu", it, u), server,
                                       cpu_s, grad_ready));
        }
        unit_done[u] = sim.AddOp(StrFormat("i%d.upd%zu", it, u), compute,
                                 update_s, std::move(upd_deps));
      }
    };

    for (size_t i = nblocks; i > 0; --i) {
      const size_t b = i - 1;
      const double flops = batch * model.blocks[b].flops * 2.0 / 3.0;
      bwd_ops[b] = sim.AddOp(
          StrFormat("i%d.bwd%zu", it, b), compute,
          cfg.dev.ComputeTime(flops, eff) + cfg.dev.kernel_overhead_s, {});
      for (size_t u = 0; u < units.size(); ++u) {
        if (units[u].first_block != b) continue;
        if (spec.update_before_comm && spec.overlap_backward) {
          // The local update only needs this unit's gradients — interleave
          // it into the backward stream so its communication starts early.
          submit_unit(u);
        } else {
          // Post-communication updates would stall the backward FIFO while
          // waiting for the wire; queue them after backward (they overlap
          // with communication of other units regardless).
          deferred_units.push_back(u);
        }
      }
    }
    for (size_t u : deferred_units) submit_unit(u);
    prev_unit_done = unit_done;
  }
  BAGUA_CHECK(sim.Run().ok());

  // Steady-state iteration time: completion of everything belonging to the
  // last iteration minus the same point one iteration earlier. We use the
  // max finish over each iteration's unit-done ops and backward.
  auto IterFinish = [&](int it) {
    double t = 0.0;
    for (size_t op = 0; op < sim.num_ops(); ++op) {
      const std::string& label = sim.op_label(static_cast<int>(op));
      if (label.rfind(StrFormat("i%d.", it), 0) == 0) {
        t = std::max(t, sim.FinishTime(static_cast<int>(op)));
      }
    }
    return t;
  };
  const double steady = IterFinish(kIters - 1) - IterFinish(kIters - 2);

  EpochEstimate est;
  est.system = spec.name;
  est.iterations = model.IterationsPerEpoch(cfg.topo.world_size());
  est.iteration_s = steady;
  // Synchronization-barrier jitter: waiting for the slowest of G workers'
  // compute, ~cv * sqrt(2 ln G) above the mean for near-Gaussian noise.
  const int group = spec.barrier_group < 0 ? cfg.topo.world_size()
                                           : std::max(1, spec.barrier_group);
  if (group > 1 && cfg.jitter_cv > 0.0) {
    const double compute_per_iter = sim.ResourceBusy(compute) / kIters;
    est.iteration_s += spec.barrier_freq * cfg.jitter_cv *
                       std::sqrt(2.0 * std::log(static_cast<double>(group))) *
                       compute_per_iter;
  }
  est.epoch_s = est.iteration_s * static_cast<double>(est.iterations);
  est.compute_s = sim.ResourceBusy(compute) / kIters;
  est.comm_s = sim.ResourceBusy(comm) / kIters;
  return est;
}

SystemSpec BaguaSpec(const TimingConfig& cfg, const Algorithm& algo,
                     const BaguaOptions& options) {
  SystemSpec spec;
  spec.name = StrFormat("bagua/%s", algo.name().c_str());
  const ClusterTopology topo = cfg.topo;
  const NetworkConfig net = cfg.net;
  const DeviceConfig dev = cfg.dev;
  const bool hier = options.hierarchical;
  spec.comm_cost = [&algo, topo, net, hier](size_t numel) {
    return algo.CommCost(numel, topo, net, hier);
  };
  spec.codec_cost = [&algo, dev](size_t numel) {
    return algo.CodecCost(numel, dev);
  };
  spec.bucket_bytes = options.bucket_bytes;
  spec.per_tensor = !options.fuse;
  spec.overlap_backward = options.overlap;
  const AlgorithmTraits traits = algo.traits();
  spec.async = !traits.synchronous;
  spec.update_before_comm = traits.update_before_comm;
  spec.update_passes = cfg.model.train.uses_adam ? 5.0 : 3.0;
  spec.barrier_group = algo.BarrierGroup(cfg.topo.world_size());
  spec.barrier_freq = algo.BarrierFreq();
  spec.host_per_unit_s = options.fuse ? 1e-4 : 1.5e-3;
  return spec;
}

}  // namespace bagua
