#include "harness/autotune.h"

#include <algorithm>

#include "algorithms/registry.h"
#include "base/logging.h"
#include "sim/collective_cost.h"

namespace bagua {

namespace {

/// Timing stub for the Async algorithm: prices the PS push/pull pattern
/// without requiring a live server (the data-path twin is
/// AsyncPsAlgorithm).
class AsyncCostModel : public Algorithm {
 public:
  const std::string& name() const override { return name_; }
  AlgorithmTraits traits() const override {
    return {false, true, true, false};
  }
  Status OnBucketReady(BaguaContext*, Bucket*) override {
    return Status::Unimplemented(
        "cost model only; use AsyncPsAlgorithm for the data path");
  }
  double CommCost(size_t numel, const ClusterTopology& topo,
                  const NetworkConfig& net,
                  bool /*hierarchical*/) const override {
    // Node-local aggregation is intrinsic to the PS architecture.
    return PsPushPullCost(topo, net, numel * 4.0, topo.num_nodes,
                          /*intra_aggregated=*/true);
  }
  double WireBytes(size_t numel, const ClusterTopology& topo,
                   bool hierarchical) const override {
    if (hierarchical) {
      return 2.0 * numel * 4.0 * (1.0 + 1.0 / topo.devices_per_node);
    }
    return 2.0 * numel * 4.0;
  }

 private:
  std::string name_ = "async";
};

}  // namespace

std::unique_ptr<Algorithm> MakeTimingAlgorithm(const std::string& name) {
  if (name == "async") return std::make_unique<AsyncCostModel>();
  auto algo = MakeAlgorithm(name);
  BAGUA_CHECK(algo.ok()) << algo.status().ToString();
  return std::move(algo).value();
}

std::vector<std::string> TunableAlgorithms() {
  std::vector<std::string> names = RegisteredAlgorithms();
  names.push_back("async");
  return names;
}

std::vector<AlgorithmRecommendation> RankAlgorithms(
    const TimingConfig& cfg, const BaguaOptions& options) {
  // Reference point: the safe default everyone is running today.
  auto allreduce = MakeTimingAlgorithm("allreduce");
  const double allreduce_s =
      EstimateEpoch(cfg, BaguaSpec(cfg, *allreduce, options)).epoch_s;

  std::vector<AlgorithmRecommendation> ranking;
  for (const std::string& name : TunableAlgorithms()) {
    auto algo = MakeTimingAlgorithm(name);
    const EpochEstimate est =
        EstimateEpoch(cfg, BaguaSpec(cfg, *algo, options));
    AlgorithmRecommendation rec;
    rec.algorithm = name;
    rec.epoch_s = est.epoch_s;
    rec.speedup_vs_allreduce = allreduce_s / est.epoch_s;
    const AlgorithmTraits traits = algo->traits();
    const bool adam_workload = cfg.model.train.uses_adam;
    if (name == "1bit-adam" && !adam_workload) {
      rec.convergence_caution = true;
      rec.note = "diverged on non-Adam (conv-style) tasks in Fig. 6";
    } else if (!traits.centralized && !traits.synchronous) {
      rec.convergence_caution = true;
      rec.note = "gossip staleness: unproven beyond AD-PSGD assumptions";
    } else if (!traits.centralized) {
      rec.convergence_caution = true;
      rec.note = "decentralized averaging showed an accuracy drop on VGG16";
    } else if (!traits.synchronous && adam_workload) {
      rec.convergence_caution = true;
      rec.note = "staleness cost a convergence gap on BERT-LARGE";
    } else if (name.rfind("local-sgd", 0) == 0) {
      rec.convergence_caution = true;
      rec.note = "infrequent averaging changes the effective batch dynamics";
    }
    ranking.push_back(std::move(rec));
  }
  std::sort(ranking.begin(), ranking.end(),
            [](const AlgorithmRecommendation& a,
               const AlgorithmRecommendation& b) {
              return a.epoch_s < b.epoch_s;
            });
  return ranking;
}

Result<AlgorithmRecommendation> RecommendAlgorithm(
    const TimingConfig& cfg, bool require_safe, const BaguaOptions& options) {
  for (const AlgorithmRecommendation& rec : RankAlgorithms(cfg, options)) {
    if (!require_safe || !rec.convergence_caution) return rec;
  }
  return Status::NotFound("no convergence-safe algorithm available");
}

}  // namespace bagua
