#ifndef BAGUA_HARNESS_REPORT_H_
#define BAGUA_HARNESS_REPORT_H_

#include <cstdio>
#include <string>
#include <vector>

#include "trace/trace.h"

namespace bagua {

/// \brief Minimal fixed-width/markdown table printer for the benchmark
/// binaries: every bench prints the same rows/series the paper's table or
/// figure reports.
class ReportTable {
 public:
  explicit ReportTable(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Renders a GitHub-markdown table.
  std::string ToMarkdown() const;

  /// Renders comma-separated values (for plotting figures).
  std::string ToCsv() const;

  void Print(FILE* out = stdout) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// \brief Prints a section header for bench output.
void PrintSection(const std::string& title, FILE* out = stdout);

/// \brief Compact text summary of a recorded trace: one per-rank row
/// (spans, virtual ticks, wall milliseconds, bytes through the comm
/// stream) followed by the global counter totals. The wall column is the
/// only place wall time surfaces — the merged Chrome JSON is virtual-time
/// only so it stays deterministic.
std::string RenderTraceSummary(const Tracer& tracer);

}  // namespace bagua

#endif  // BAGUA_HARNESS_REPORT_H_
