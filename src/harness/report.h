#ifndef BAGUA_HARNESS_REPORT_H_
#define BAGUA_HARNESS_REPORT_H_

#include <cstdio>
#include <string>
#include <vector>

#include "trace/trace.h"

namespace bagua {

/// \brief Minimal fixed-width/markdown table printer for the benchmark
/// binaries: every bench prints the same rows/series the paper's table or
/// figure reports.
class ReportTable {
 public:
  explicit ReportTable(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Renders a GitHub-markdown table.
  std::string ToMarkdown() const;

  /// Renders comma-separated values (for plotting figures).
  std::string ToCsv() const;

  void Print(FILE* out = stdout) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// \brief Prints a section header for bench output.
void PrintSection(const std::string& title, FILE* out = stdout);

/// \brief Measured backward∥comm wall-clock overlap from a recorded
/// trace.
///
/// The runtime records backward as "bwd.seg" compute segments that exclude
/// inline communication (core/runtime.cc), so the wall-time intersection
/// of kComm "bucket" spans with those segments is exactly the overlap the
/// paper's O relaxation promises: identically zero on the synchronous
/// executor (comm runs *between* segments), positive under the async comm
/// engine (comm runs on its own thread *across* them).
struct OverlapAccounting {
  double comm_us = 0.0;        ///< total wall time of bucket comm spans
  double overlapped_us = 0.0;  ///< part landing inside backward segments
  double fraction() const {
    return comm_us > 0.0 ? overlapped_us / comm_us : 0.0;
  }
};

/// Accounts one rank, or every rank summed (`rank` = -1).
OverlapAccounting MeasuredOverlap(const Tracer& tracer, int rank = -1);

/// \brief Compact text summary of a recorded trace: one per-rank row
/// (spans, virtual ticks, wall milliseconds, bytes through the comm
/// stream, queue waits, measured backward∥comm overlap) followed by the
/// global counter totals. The wall-derived columns are the only place
/// wall time surfaces — the merged Chrome JSON is virtual-time only so it
/// stays deterministic.
std::string RenderTraceSummary(const Tracer& tracer);

}  // namespace bagua

#endif  // BAGUA_HARNESS_REPORT_H_
