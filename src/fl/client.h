#ifndef BAGUA_FL_CLIENT_H_
#define BAGUA_FL_CLIENT_H_

#include <cstdint>
#include <vector>

#include "base/status.h"
#include "model/data.h"

namespace bagua {

/// \brief The client-local model: a 2-layer MLP (dim → hidden, tanh →
/// classes, softmax cross-entropy) sized so that thousands of simulated
/// clients per round stay cheap even under TSan.
///
/// Layout of the flat parameter vector (param-server order):
///   W1 [dim x hidden] | b1 [hidden] | W2 [hidden x classes] | b2 [classes]
struct FlModelConfig {
  size_t dim = 32;
  size_t hidden = 16;
  size_t classes = 8;
};

size_t FlParamCount(const FlModelConfig& model);

/// Seeded init: W1/W2 scaled-normal, biases zero. Every replica derives the
/// same initial global model from the seed.
void InitFlParams(const FlModelConfig& model, uint64_t seed,
                  std::vector<float>* params);

/// \brief How a client turns the global model into its round contribution.
enum class FlAggregation {
  kFedAvg,  ///< run local SGD steps, contribute delta = w_local - w_global
  kFedSgd,  ///< contribute one raw minibatch gradient at the global model
};

/// \brief Per-round local-training knobs shared by every client.
struct FlClientConfig {
  FlModelConfig model;
  FlAggregation aggregation = FlAggregation::kFedAvg;
  size_t local_steps = 4;    ///< SGD steps per round (FedAvg; FedSGD uses 1)
  size_t batch_size = 16;
  double lr = 0.1;           ///< client-local learning rate
};

/// \brief One client's round output.
struct FlClientResult {
  std::vector<float> contribution;  ///< delta (FedAvg) or gradient (FedSGD)
  uint32_t samples = 0;             ///< FedAvg weight n_k (0 ⇒ skip client)
  double mean_loss = 0.0;           ///< mean training loss over local steps
  uint64_t compute_ticks = 0;       ///< virtual local-compute time (DES)
};

/// Deterministic virtual compute ticks of one client's local training
/// before its per-(client, round) straggle jitter (jitter adds up to one
/// more base on top). The server derives its straggler threshold from this
/// same formula, so the two can never drift apart.
uint64_t FlBaseComputeTicks(const FlClientConfig& cfg);

/// Mean softmax cross-entropy of `params` over a batch (evaluation helper;
/// sequential double-precision loops, bitwise deterministic).
double FlBatchLoss(const FlModelConfig& model, const float* params,
                   const Tensor& x, const Tensor& y);

/// \brief Runs client `client`'s local training for `round` starting from
/// the global model `global` and fills `out`.
///
/// Pure sequential arithmetic over client-owned storage: no shared state,
/// no reductions whose order depends on thread count — so a client's
/// contribution is a function of (client, round, global weights, data)
/// only, and any execution schedule produces bitwise-identical bytes.
/// Clients with empty shards return samples = 0 and an empty contribution.
Status RunFlClient(const FlClientConfig& cfg, const FederatedView& data,
                   int client, uint64_t round, const std::vector<float>& global,
                   FlClientResult* out);

}  // namespace bagua

#endif  // BAGUA_FL_CLIENT_H_
