#ifndef BAGUA_FL_SAMPLING_H_
#define BAGUA_FL_SAMPLING_H_

#include <cstdint>
#include <vector>

namespace bagua {

/// \brief Number of clients sampled per round at `participation` fraction:
/// ceil(participation * num_clients), clamped to [1, num_clients].
int CohortSize(int num_clients, double participation);

/// \brief The per-round client cohort: `cohort` distinct client ids drawn
/// without replacement from [0, num_clients), returned in ascending order.
///
/// A pure function of (seed, round, num_clients, cohort) — no global state,
/// no threading — so the same round always samples the same cohort on any
/// machine at any intra-op thread count, and a changed seed or round
/// changes it. The draw is a partial Fisher-Yates shuffle seeded from
/// MixSeed(seed, round), which is uniform over cohorts.
std::vector<int> SampleCohort(uint64_t seed, uint64_t round, int num_clients,
                              int cohort);

}  // namespace bagua

#endif  // BAGUA_FL_SAMPLING_H_
