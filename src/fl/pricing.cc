#include "fl/pricing.h"

#include "base/logging.h"
#include "sim/collective_cost.h"

namespace bagua {

FlRoundCost PriceFlRound(const StepPlan& plan, int cohort,
                         const NetworkConfig& net, uint64_t max_ticks,
                         double ticks_per_s) {
  BAGUA_CHECK_GT(cohort, 0);
  FlRoundCost cost;
  // Server = node 0, one node per cohort member: every flow crosses the
  // NIC tier, and the server port serializes the fan-out/fan-in, exactly
  // like a BytePS summation server at partial participation.
  const ClusterTopology topo = ClusterTopology::Make(cohort + 1, 1);

  double model_bytes = 0.0;
  for (const PlanUnit& u : plan.units) model_bytes += u.numel * 4.0;

  std::vector<Flow> down;
  down.reserve(cohort);
  for (int m = 1; m <= cohort; ++m) {
    down.push_back(Flow{0, m, model_bytes});
  }
  cost.broadcast_s = FlowSetTime(topo, net, down);

  // Uploads walk the plan: unit u of every member is one flow set, and the
  // sets run back to back (the executor receives units in plan order).
  for (const PlanUnit& u : plan.units) {
    std::vector<Flow> up;
    up.reserve(cohort);
    for (int m = 1; m <= cohort; ++m) {
      up.push_back(Flow{m, 0, u.numel * 4.0});
    }
    cost.upload_s += FlowSetTime(topo, net, up);
  }
  if (net.ps_server_reduce_Bps > 0.0) {
    cost.upload_s += cohort * model_bytes / net.ps_server_reduce_Bps;
  }
  if (ticks_per_s > 0.0) {
    cost.compute_s = static_cast<double>(max_ticks) / ticks_per_s;
  }
  cost.round_s = cost.broadcast_s + cost.compute_s + cost.upload_s;

  // The DES recurrence of the same pattern: cohort worker nodes pushing
  // the whole model against the sharded summation service and pulling it
  // back — the reference the closed form is sanity-checked against.
  cost.des_round_s = DesPsPushPullTime(ClusterTopology::Make(cohort, 1), net,
                                       model_bytes);
  return cost;
}

}  // namespace bagua
