#include "fl/client.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "base/arena.h"
#include "base/logging.h"
#include "base/rng.h"
#include "base/strings.h"

namespace bagua {
namespace {

/// Client-local training scratch recycles through the "fl" arena: a
/// thousand-client round re-runs BatchPass constantly, and the federated
/// gate holds the whole round to the steady-state-zero-allocation bar.
Arena& FlArena() {
  static Arena* arena = &MemoryRegistry::Global().ArenaFor("fl");
  return *arena;
}

// Offsets of the four parameter blocks in the flat vector.
struct FlLayout {
  size_t w1, b1, w2, b2, total;
};

FlLayout LayoutOf(const FlModelConfig& m) {
  FlLayout l;
  l.w1 = 0;
  l.b1 = l.w1 + m.dim * m.hidden;
  l.w2 = l.b1 + m.hidden;
  l.b2 = l.w2 + m.hidden * m.classes;
  l.total = l.b2 + m.classes;
  return l;
}

// Forward + (optionally) backward for one batch. Adds the mean-over-batch
// gradient into `grad` (doubles, may be null for loss-only evaluation) and
// returns the mean loss. Strictly sequential: sample by sample, class by
// class, so the float/double operation order never depends on threading.
double BatchPass(const FlModelConfig& m, const float* params, const Tensor& x,
                 const Tensor& y, double* grad) {
  const FlLayout l = LayoutOf(m);
  const size_t batch = y.numel();
  BAGUA_CHECK_GT(batch, 0u);
  const double inv_batch = 1.0 / static_cast<double>(batch);
  const float* w1 = params + l.w1;
  const float* b1 = params + l.b1;
  const float* w2 = params + l.w2;
  const float* b2 = params + l.b2;

  // One block, four views: h / dh (hidden) and logits / p (classes). Every
  // slot is assigned before it is read (dh is zeroed explicitly below), so
  // uninitialized recycled storage cannot leak into the math.
  ArenaScratch fwd_scratch(
      &FlArena(), (2 * m.hidden + 2 * m.classes) * sizeof(double));
  double* h = fwd_scratch.doubles();
  double* dh = h + m.hidden;
  double* logits = dh + m.hidden;
  double* p = logits + m.classes;
  double loss = 0.0;
  for (size_t s = 0; s < batch; ++s) {
    const float* xs = x.data() + s * m.dim;
    const size_t label = static_cast<size_t>(y[s]);
    BAGUA_CHECK_LT(label, m.classes);
    for (size_t j = 0; j < m.hidden; ++j) {
      double acc = b1[j];
      for (size_t i = 0; i < m.dim; ++i) acc += xs[i] * w1[i * m.hidden + j];
      h[j] = std::tanh(acc);
    }
    for (size_t k = 0; k < m.classes; ++k) {
      double acc = b2[k];
      for (size_t j = 0; j < m.hidden; ++j) {
        acc += h[j] * w2[j * m.classes + k];
      }
      logits[k] = acc;
    }
    double mx = logits[0];
    for (size_t k = 1; k < m.classes; ++k) mx = std::max(mx, logits[k]);
    double z = 0.0;
    for (size_t k = 0; k < m.classes; ++k) z += std::exp(logits[k] - mx);
    for (size_t k = 0; k < m.classes; ++k) p[k] = std::exp(logits[k] - mx) / z;
    loss += -std::log(std::max(p[label], 1e-12));
    if (grad == nullptr) continue;

    for (size_t j = 0; j < m.hidden; ++j) dh[j] = 0.0;
    for (size_t k = 0; k < m.classes; ++k) {
      const double dl = (p[k] - (k == label ? 1.0 : 0.0)) * inv_batch;
      grad[l.b2 + k] += dl;
      for (size_t j = 0; j < m.hidden; ++j) {
        grad[l.w2 + j * m.classes + k] += h[j] * dl;
        dh[j] += w2[j * m.classes + k] * dl;
      }
    }
    for (size_t j = 0; j < m.hidden; ++j) {
      const double dpre = dh[j] * (1.0 - h[j] * h[j]);
      grad[l.b1 + j] += dpre;
      for (size_t i = 0; i < m.dim; ++i) {
        grad[l.w1 + i * m.hidden + j] += xs[i] * dpre;
      }
    }
  }
  return loss * inv_batch;
}

}  // namespace

size_t FlParamCount(const FlModelConfig& model) {
  return LayoutOf(model).total;
}

void InitFlParams(const FlModelConfig& model, uint64_t seed,
                  std::vector<float>* params) {
  const FlLayout l = LayoutOf(model);
  params->assign(l.total, 0.0f);
  Rng rng(MixSeed(seed, 0xF1A907ull));
  const double s1 = 1.0 / std::sqrt(static_cast<double>(model.dim));
  const double s2 = 1.0 / std::sqrt(static_cast<double>(model.hidden));
  for (size_t i = 0; i < model.dim * model.hidden; ++i) {
    (*params)[l.w1 + i] = static_cast<float>(rng.Normal() * s1);
  }
  for (size_t i = 0; i < model.hidden * model.classes; ++i) {
    (*params)[l.w2 + i] = static_cast<float>(rng.Normal() * s2);
  }
}

uint64_t FlBaseComputeTicks(const FlClientConfig& cfg) {
  const size_t steps =
      cfg.aggregation == FlAggregation::kFedSgd ? 1 : cfg.local_steps;
  const uint64_t flops =
      2ull * (cfg.model.dim * cfg.model.hidden +
              cfg.model.hidden * cfg.model.classes);
  return steps * cfg.batch_size * flops / 64ull + 1ull;
}

double FlBatchLoss(const FlModelConfig& model, const float* params,
                   const Tensor& x, const Tensor& y) {
  return BatchPass(model, params, x, y, nullptr);
}

Status RunFlClient(const FlClientConfig& cfg, const FederatedView& data,
                   int client, uint64_t round, const std::vector<float>& global,
                   FlClientResult* out) {
  const size_t numel = FlParamCount(cfg.model);
  if (global.size() != numel) {
    return Status::InvalidArgument(
        StrFormat("global model %zu != %zu params", global.size(), numel));
  }
  out->contribution.clear();
  out->samples = 0;
  out->mean_loss = 0.0;
  out->compute_ticks = 0;
  const size_t shard = data.ClientSize(client);
  if (shard == 0) return Status::OK();  // nothing local to learn from

  const size_t steps =
      cfg.aggregation == FlAggregation::kFedSgd ? 1 : cfg.local_steps;
  BAGUA_CHECK_GT(steps, 0u);

  ArenaScratch w_scratch(&FlArena(), numel * sizeof(float));
  float* w = w_scratch.floats();
  std::memcpy(w, global.data(), numel * sizeof(float));
  ArenaScratch grad_scratch(&FlArena(), numel * sizeof(double));
  double* grad = grad_scratch.doubles();
  Tensor x, y;
  double loss_sum = 0.0;
  for (size_t step = 0; step < steps; ++step) {
    RETURN_IF_ERROR(data.GetClientBatch(
        client, round, step, cfg.batch_size, &x, &y));
    std::fill(grad, grad + numel, 0.0);
    loss_sum += BatchPass(cfg.model, w, x, y, grad);
    if (cfg.aggregation == FlAggregation::kFedSgd) break;
    for (size_t i = 0; i < numel; ++i) {
      w[i] = static_cast<float>(w[i] - cfg.lr * grad[i]);
    }
  }

  out->contribution.resize(numel);
  if (cfg.aggregation == FlAggregation::kFedSgd) {
    for (size_t i = 0; i < numel; ++i) {
      out->contribution[i] = static_cast<float>(grad[i]);
    }
  } else {
    for (size_t i = 0; i < numel; ++i) {
      out->contribution[i] = w[i] - global[i];
    }
  }
  out->samples = static_cast<uint32_t>(std::min<size_t>(shard, 0xFFFFFFFFu));
  out->mean_loss = loss_sum / static_cast<double>(steps);

  // Virtual local-compute time: per-sample model flops, plus a seeded
  // per-(client, round) slowdown so straggler accounting has something
  // deterministic to measure.
  const uint64_t base = FlBaseComputeTicks(cfg);
  Rng jitter(MixSeed(0x57A66E12ull, MixSeed(round + 1, client + 1)));
  out->compute_ticks = base + jitter.UniformInt(base);  // up to 2x straggle
  return Status::OK();
}

}  // namespace bagua
