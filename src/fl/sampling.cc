#include "fl/sampling.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "base/logging.h"
#include "base/rng.h"

namespace bagua {

int CohortSize(int num_clients, double participation) {
  BAGUA_CHECK_GT(num_clients, 0);
  const int cohort = static_cast<int>(
      std::ceil(participation * static_cast<double>(num_clients)));
  return std::min(num_clients, std::max(1, cohort));
}

std::vector<int> SampleCohort(uint64_t seed, uint64_t round, int num_clients,
                              int cohort) {
  BAGUA_CHECK_GT(num_clients, 0);
  BAGUA_CHECK_GT(cohort, 0);
  BAGUA_CHECK_LE(cohort, num_clients);
  Rng rng(MixSeed(seed, MixSeed(0xF17C0407u, round)));
  std::vector<int> ids(num_clients);
  std::iota(ids.begin(), ids.end(), 0);
  // Partial Fisher-Yates: after i swaps the prefix [0, i) is a uniform
  // without-replacement draw; only `cohort` swaps are needed.
  for (int i = 0; i < cohort; ++i) {
    const int j =
        i + static_cast<int>(rng.UniformInt(
                static_cast<uint64_t>(num_clients - i)));
    std::swap(ids[i], ids[j]);
  }
  ids.resize(cohort);
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace bagua
