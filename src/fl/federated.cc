#include "fl/federated.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <set>
#include <thread>

#include "base/logging.h"
#include "base/rng.h"
#include "base/strings.h"
#include "faults/faulty_transport.h"
#include "faults/wire.h"
#include "fl/sampling.h"
#include "model/data.h"
#include "ps/server.h"
#include "trace/trace.h"

namespace bagua {
namespace {

// Stream salts: every derived rng purpose gets its own constant so streams
// can never alias across subsystems sharing one seed.
constexpr uint64_t kFlShardSalt = 0xF15A4D5Bull;
constexpr uint64_t kFlCrashUnitSalt = 0xFEC4A54Dull;

/// Fixed-layout metadata riding in front of the first delta unit. The
/// weight (FedAvg's n_k) travels with the payload so the server never needs
/// client-side state; ticks/loss feed the round accounting.
struct FlWireHeader {
  uint32_t client = 0;
  uint32_t samples = 0;
  uint64_t ticks = 0;
  double mean_loss = 0.0;
};
static_assert(sizeof(FlWireHeader) == 24, "wire header layout is fixed");

/// Flat-model offset of each plan unit: unit i covers
/// [offsets[i], offsets[i] + units[i].numel). Plan order is the wire order.
std::vector<size_t> UnitOffsets(const StepPlan& plan) {
  std::vector<size_t> offsets(plan.units.size());
  size_t at = 0;
  for (size_t u = 0; u < plan.units.size(); ++u) {
    offsets[u] = at;
    at += plan.units[u].numel;
  }
  return offsets;
}

/// How many delta units a crashing member uploads before dying: a pure
/// function of (plan seed, round, rank), in [0, units]. 0 = crash before
/// any send; units would be a crash after a complete upload, so the draw
/// is over [0, units).
size_t CrashUnitOf(uint64_t seed, uint64_t round, int rank, size_t units) {
  Rng rng(MixSeed(MixSeed(seed, kFlCrashUnitSalt), MixSeed(round, rank)));
  return static_cast<size_t>(rng.UniformInt(units));
}

/// Members with ticks in the top quarter of the jitter span (jitter is
/// uniform in [0, base] on top of base) count as the round's stragglers.
uint64_t StragglerThresholdTicks(const FlClientConfig& cfg) {
  const uint64_t base = FlBaseComputeTicks(cfg);
  return base + base - base / 4;
}

/// Everything one round's worker tasks share, read-only (or internally
/// synchronized), so the client lambda stays a capture of one pointer.
struct RoundContext {
  const FlConfig* cfg = nullptr;
  const FederatedView* view = nullptr;
  TransportGroup* transport = nullptr;
  const StepPlan* plan = nullptr;
  const std::vector<size_t>* offsets = nullptr;
  const std::vector<float>* global = nullptr;
  const std::vector<int>* cohort = nullptr;
  const std::set<int>* crashed_ranks = nullptr;
  uint64_t round = 0;
  uint64_t dropout_seed = 0;
  size_t numel = 0;
};

/// One cohort member's life: receive the model, train locally, upload the
/// delta unit by unit — or a deterministic prefix of it, then die. Runs on
/// a client-executor thread; touches only member-owned storage plus the
/// thread-safe transport/tracer, so any claim schedule produces the same
/// bytes on the wire.
void RunMember(const RoundContext& ctx, int client) {
  const int src = client + 1;
  const uint64_t r = ctx.round;
  TransportGroup* t = ctx.transport;

  std::vector<uint8_t> mbuf;
  Status st = t->Recv(0, src, MakeTag(FlModelSpace(), r), &mbuf);
  if (!st.ok()) return;  // shutdown / teardown path
  BAGUA_CHECK_EQ(mbuf.size(), ctx.numel * sizeof(float));

  TraceSpan span(src, TraceStream::kFl, "fl.local", mbuf.size(),
                 static_cast<int>(r));
  std::vector<float> global(ctx.numel);
  std::memcpy(global.data(), mbuf.data(), ctx.numel * sizeof(float));
  t->Recycle(std::move(mbuf));

  FlClientResult res;
  st = RunFlClient(ctx.cfg->client, *ctx.view, client, r, global, &res);
  BAGUA_CHECK(st.ok());

  const size_t units = ctx.plan->units.size();
  const bool crashed = ctx.crashed_ranks->count(src) != 0;
  const size_t limit =
      crashed ? CrashUnitOf(ctx.dropout_seed, r, src, units) : units;

  // Empty-shard members upload zeros with weight 0 — the server's schedule
  // stays uniform and the merge ignores them.
  std::vector<float> zeros;
  const float* contrib = res.contribution.data();
  if (res.contribution.empty()) {
    zeros.assign(ctx.numel, 0.0f);
    contrib = zeros.data();
  }

  FlWireHeader hdr;
  hdr.client = static_cast<uint32_t>(client);
  hdr.samples = res.samples;
  hdr.ticks = res.compute_ticks;
  hdr.mean_loss = res.mean_loss;

  for (size_t u = 0; u < limit; ++u) {
    const size_t payload = ctx.plan->units[u].numel * sizeof(float);
    const size_t head = u == 0 ? sizeof(FlWireHeader) : 0;
    std::vector<uint8_t> buf = t->AcquireBuffer(head + payload);
    if (head != 0) std::memcpy(buf.data(), &hdr, head);
    std::memcpy(buf.data() + head, contrib + (*ctx.offsets)[u], payload);
    span.AddBytes(head + payload);
    st = t->SendBuffer(src, 0, MakeTag(FlDeltaSpace(static_cast<uint32_t>(u)),
                                       r),
                       std::move(buf));
    BAGUA_CHECK(st.ok());
  }
  if (crashed) {
    t->MarkDead(src);
    TraceIncrement(src, "fl.crashes");
  }
}

}  // namespace

ModelProfile BuildFlModelProfile(const FlModelConfig& model) {
  ModelProfile p;
  p.name = "fl-mlp";
  BlockProfile fc1;
  fc1.name = "fc1";
  fc1.params = model.dim * model.hidden + model.hidden;
  fc1.flops = 2.0 * static_cast<double>(model.dim * model.hidden);
  fc1.num_tensors = 2;
  BlockProfile fc2;
  fc2.name = "fc2";
  fc2.params = model.hidden * model.classes + model.classes;
  fc2.flops = 2.0 * static_cast<double>(model.hidden * model.classes);
  fc2.num_tensors = 2;
  p.blocks = {fc1, fc2};
  p.train.samples_per_epoch = 0;
  return p;
}

StepPlan BuildFlRoundPlan(const FlModelConfig& model, size_t bucket_bytes) {
  StepPlan plan = FusedUnitsPlan(BuildFlModelProfile(model), bucket_bytes);
  // The upload is merged host-side by the FL server — the summation
  // service shape, which is also what prices the round's PS term.
  ServerReduce(&plan);
  return plan;
}

FaultPlan BuildFlDropoutPlan(const FlConfig& cfg) {
  FaultPlan plan;
  plan.seed = MixSeed(cfg.seed, kFlCrashUnitSalt);
  if (cfg.dropout <= 0.0) return plan;
  const int cohort_size = CohortSize(cfg.num_clients, cfg.participation);
  for (uint64_t r = 1; r <= cfg.rounds; ++r) {
    const std::vector<int> cohort =
        SampleCohort(cfg.seed, r, cfg.num_clients, cohort_size);
    for (const int c : cohort) {
      Rng rng(MixSeed(MixSeed(plan.seed, r), static_cast<uint64_t>(c) + 1));
      if (rng.Bernoulli(cfg.dropout)) {
        plan.CrashAt(/*rank=*/c + 1, /*step=*/r, /*recover=*/true);
      }
    }
  }
  return plan;
}

Status RunFlTraining(const FlConfig& cfg, FlReport* report) {
  if (cfg.num_clients <= 0) {
    return Status::InvalidArgument("num_clients must be positive");
  }
  if (cfg.rounds == 0) return Status::InvalidArgument("rounds must be >= 1");
  if (cfg.threads <= 0 || cfg.flow_window <= 0) {
    return Status::InvalidArgument("threads and flow_window must be >= 1");
  }
  const auto wall_begin = std::chrono::steady_clock::now();

  const StepPlan plan = BuildFlRoundPlan(cfg.client.model, cfg.bucket_bytes);
  RETURN_IF_ERROR(plan.Validate());
  const size_t units = plan.units.size();
  if (units > kFlMaxUnits) {
    return Status::InvalidArgument("round plan exceeds the fl delta range");
  }
  const std::vector<size_t> offsets = UnitOffsets(plan);
  const size_t numel = FlParamCount(cfg.client.model);
  BAGUA_CHECK_EQ(offsets.back() + plan.units.back().numel, numel);

  SyntheticClassification::Options data_opts;
  data_opts.num_samples = cfg.dataset_samples;
  data_opts.dim = cfg.client.model.dim;
  data_opts.classes = cfg.client.model.classes;
  data_opts.seed = cfg.data_seed;
  const SyntheticClassification dataset(data_opts);
  FederatedShardOptions shard_opts;
  shard_opts.num_clients = cfg.num_clients;
  shard_opts.skew = cfg.skew;
  shard_opts.seed = MixSeed(cfg.data_seed, kFlShardSalt);
  const FederatedView view(&dataset, shard_opts);

  const int world = cfg.num_clients + 1;
  FaultyTransport* faulty = nullptr;
  std::unique_ptr<TransportGroup> transport;
  if (!cfg.message_faults.rules.empty()) {
    FaultPlan wire_plan = cfg.message_faults;
    wire_plan.harden = true;  // the FL driver has no recovery of its own
    auto owned = std::make_unique<FaultyTransport>(world, wire_plan);
    faulty = owned.get();
    transport = std::move(owned);
  } else {
    transport = std::make_unique<TransportGroup>(
        world, cfg.naive_sequential ? TransportGroup::PoolMode::kUnpooled
                                    : TransportGroup::PoolMode::kPooled);
  }

  ShardedParameterServer ps(numel, /*num_shards=*/4, /*num_workers=*/1);
  std::vector<float> global(numel);
  InitFlParams(cfg.client.model, cfg.seed, &global);
  RETURN_IF_ERROR(ps.InitWeights(global.data(), numel));

  FaultPlan dropout_plan = cfg.dropouts;
  if (dropout_plan.rules.empty() && cfg.dropout > 0.0) {
    dropout_plan = BuildFlDropoutPlan(cfg);
  }
  // round -> ranks crashing in it (kCrash rules; other kinds belong to
  // message_faults and are ignored here).
  std::vector<std::set<int>> crashes(cfg.rounds + 1);
  for (const FaultRule& rule : dropout_plan.rules) {
    if (rule.kind != FaultKind::kCrash) continue;
    if (rule.at_step >= 1 && rule.at_step <= cfg.rounds) {
      crashes[rule.at_step].insert(rule.src);
    }
  }

  report->rounds.clear();
  report->rounds.reserve(cfg.rounds);
  report->total_participants = 0;
  report->total_dropouts = 0;
  report->total_rejoins = 0;
  report->total_stragglers = 0;
  report->plan_units = units;
  report->dropout_plan = dropout_plan;

  const uint64_t straggler_ticks = StragglerThresholdTicks(cfg.client);
  const int cohort_size = CohortSize(cfg.num_clients, cfg.participation);
  const uint64_t model_bytes = numel * sizeof(float);
  std::vector<float> delta(numel);  // server-side staging scratch
  const uint64_t warmup_rounds = std::min<uint64_t>(2, cfg.rounds);
  uint64_t warm_misses = 0;

  // Pre-populate the pool's free lists to the flow-control ceiling: at
  // most `window` members are in flight, each holding one model buffer and
  // one buffer per delta unit. Demand-driven warm-up would only reach the
  // all-time peak after whichever round's thread schedule happens to
  // overlap the most — allocating mid-run on the unlucky round — whereas
  // the ceiling is static, so paying it up front makes every later
  // acquire a hit no matter how the threads interleave.
  if (!cfg.naive_sequential && transport->pooled()) {
    const size_t window =
        std::min<size_t>(cfg.flow_window, static_cast<size_t>(cohort_size));
    std::vector<std::vector<uint8_t>> held;
    held.reserve(window * (units + 1));
    for (size_t i = 0; i < window; ++i) {
      held.push_back(transport->AcquireBuffer(model_bytes));
      for (size_t u = 0; u < units; ++u) {
        const size_t head = u == 0 ? sizeof(FlWireHeader) : 0;
        held.push_back(transport->AcquireBuffer(
            head + plan.units[u].numel * sizeof(float)));
      }
    }
    for (std::vector<uint8_t>& buf : held) {
      transport->Recycle(std::move(buf));
    }
  }

  for (uint64_t r = 1; r <= cfg.rounds; ++r) {
    TraceSpan round_span(0, TraceStream::kFl, "fl.round", 0,
                         static_cast<int>(r));
    TraceIncrement(0, "fl.rounds");
    FlRoundStats stats;
    stats.round = r;

    const std::vector<int> cohort =
        SampleCohort(cfg.seed, r, cfg.num_clients, cohort_size);
    stats.cohort = static_cast<int>(cohort.size());
    for (const int c : cohort) {
      if (!transport->IsAlive(c + 1)) {
        transport->MarkAlive(c + 1);  // rejoin after an earlier crash
        ++stats.rejoins;
        TraceIncrement(0, "fl.rejoins");
      }
    }

    RETURN_IF_ERROR(ps.Pull(global.data(), numel));
    RETURN_IF_ERROR(ps.BeginFlRound(r));

    RoundContext ctx;
    ctx.cfg = &cfg;
    ctx.view = &view;
    ctx.transport = transport.get();
    ctx.plan = &plan;
    ctx.offsets = &offsets;
    ctx.global = &global;
    ctx.cohort = &cohort;
    ctx.crashed_ranks = &crashes[r];
    ctx.round = r;
    ctx.dropout_seed = dropout_plan.seed;
    ctx.numel = numel;

    auto send_model = [&](size_t i) -> Status {
      stats.bytes_down += model_bytes;
      return transport->Send(0, cohort[i] + 1, MakeTag(FlModelSpace(), r),
                             global.data(), model_bytes);
    };

    // Harvests member i's delta units in plan order, staging into `delta`;
    // a mid-upload crash surfaces as DataLoss and discards the stage. The
    // weighted accumulate happens here — on the server thread, in the
    // ascending member order of the caller — which is the whole
    // determinism story: the merge order is imposed by the server, not by
    // whichever client finished first.
    auto harvest = [&](int client) -> Status {
      const int src = client + 1;
      FlWireHeader hdr;
      bool dropped = false;
      for (size_t u = 0; u < units; ++u) {
        std::vector<uint8_t> buf;
        const Status st = transport->Recv(
            src, 0, MakeTag(FlDeltaSpace(static_cast<uint32_t>(u)), r), &buf);
        if (st.IsDataLoss()) {
          dropped = true;
          break;
        }
        RETURN_IF_ERROR(st);
        const size_t head = u == 0 ? sizeof(FlWireHeader) : 0;
        const size_t payload = plan.units[u].numel * sizeof(float);
        if (buf.size() != head + payload) {
          return Status(StatusCode::kInternal,
                        StrFormat("fl unit %zu carried %zu bytes, want %zu",
                                  u, buf.size(), head + payload));
        }
        if (head != 0) std::memcpy(&hdr, buf.data(), head);
        std::memcpy(delta.data() + offsets[u], buf.data() + head, payload);
        stats.bytes_up += buf.size();
        transport->Recycle(std::move(buf));
      }
      if (dropped) {
        ++stats.dropouts;
        TraceIncrement(0, "fl.dropouts");
        return Status::OK();
      }
      if (hdr.samples == 0) {
        ++stats.skipped;
        TraceIncrement(0, "fl.skipped");
      } else {
        RETURN_IF_ERROR(ps.AccumulateWeighted(
            delta.data(), numel, static_cast<double>(hdr.samples)));
        ++stats.participants;
        TraceIncrement(0, "fl.participants");
        stats.mean_loss += hdr.mean_loss;
        stats.total_weight += static_cast<double>(hdr.samples);
      }
      stats.max_ticks = std::max(stats.max_ticks, hdr.ticks);
      if (hdr.ticks >= straggler_ticks) {
        ++stats.stragglers;
        TraceIncrement(0, "fl.stragglers");
      }
      return Status::OK();
    };

    Status round_status = Status::OK();
    if (cfg.naive_sequential) {
      // Baseline: strictly one member at a time — model down, local
      // training inline on this thread, delta up, merge. Identical
      // messages and merge order, so identical bits; none of the overlap.
      for (size_t i = 0; i < cohort.size(); ++i) {
        RETURN_IF_ERROR(send_model(i));
        RunMember(ctx, cohort[i]);
        round_status = harvest(cohort[i]);
        if (!round_status.ok()) break;
      }
    } else {
      // A permuted claim order can only be driven deadlock-free with every
      // model already in flight (a windowed send to member i + K waits on
      // member i, which a descending claimer visits last).
      const size_t window =
          cfg.reverse_claim
              ? cohort.size()
              : std::min<size_t>(cfg.flow_window, cohort.size());
      std::atomic<size_t> claim{0};
      std::vector<std::thread> pool;
      pool.reserve(cfg.threads);
      for (int t = 0; t < cfg.threads; ++t) {
        pool.emplace_back([&ctx, &claim, &cfg] {
          const size_t n = ctx.cohort->size();
          while (true) {
            const size_t idx = claim.fetch_add(1);
            if (idx >= n) return;
            const size_t i = cfg.reverse_claim ? n - 1 - idx : idx;
            RunMember(ctx, (*ctx.cohort)[i]);
          }
        });
      }
      size_t next_send = 0;
      for (; next_send < window; ++next_send) {
        round_status = send_model(next_send);
        if (!round_status.ok()) break;
      }
      for (size_t i = 0; round_status.ok() && i < cohort.size(); ++i) {
        round_status = harvest(cohort[i]);
        if (round_status.ok() && next_send < cohort.size()) {
          round_status = send_model(next_send++);
        }
      }
      if (!round_status.ok()) transport->Shutdown();
      for (std::thread& t : pool) t.join();
    }
    RETURN_IF_ERROR(round_status);

    const double scale = cfg.client.aggregation == FlAggregation::kFedSgd
                             ? -cfg.server_lr
                             : 1.0;
    RETURN_IF_ERROR(ps.CommitFlRound(r, scale));

    if (stats.participants > 0) {
      stats.mean_loss /= static_cast<double>(stats.participants);
    }
    round_span.AddBytes(stats.bytes_up);
    report->total_participants += stats.participants;
    report->total_dropouts += stats.dropouts;
    report->total_rejoins += stats.rejoins;
    report->total_stragglers += stats.stragglers;
    report->rounds.push_back(stats);
    if (r == warmup_rounds) warm_misses = transport->pool_stats().misses;
  }

  report->final_model.assign(numel, 0.0f);
  RETURN_IF_ERROR(ps.Pull(report->final_model.data(), numel));
  report->model_hash =
      wire::Fnv1a(report->final_model.data(), numel * sizeof(float));
  report->pool = transport->pool_stats();
  report->pool_misses_steady = report->pool.misses - warm_misses;
  report->bytes_sent = transport->TotalBytesSent();
  report->fault_stats = faulty != nullptr ? faulty->stats() : FaultStats{};
  report->wall_s = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - wall_begin)
                       .count();
  return Status::OK();
}

}  // namespace bagua
