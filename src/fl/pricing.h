#ifndef BAGUA_FL_PRICING_H_
#define BAGUA_FL_PRICING_H_

#include "fl/federated.h"
#include "sim/network.h"
#include "sim/topology.h"

namespace bagua {

/// \brief Offline price of one federated round on the simulated fabric —
/// the PS term of sim/collective_cost applied to the FL data path.
///
/// The cohort is modeled as `cohort` single-device nodes pushing against
/// one server node, which is exactly the flow set the real executor
/// produces: a model broadcast fanning out of the server NIC, then the
/// per-unit delta uploads fanning back in (serialized through the server's
/// ingress plus its ps_server_reduce_Bps summation rate). The per-unit
/// upload term walks the same StepPlan the live round ships, so a bucket
/// knob that changes the wire schedule changes the price.
struct FlRoundCost {
  double broadcast_s = 0.0;  ///< model down to the cohort (flow set)
  double upload_s = 0.0;     ///< per-plan-unit deltas up + server reduce
  double compute_s = 0.0;    ///< slowest member's local training
  double round_s = 0.0;      ///< closed-form total (sum of the above)
  double des_round_s = 0.0;  ///< DES push-pull recurrence (PS term)
};

/// Prices one round of `plan` with `cohort` participating members on
/// `net`. `ticks_per_s` converts client compute ticks (FlClientResult) to
/// seconds; `max_ticks` is the round's slowest member (0 prices compute as
/// free).
FlRoundCost PriceFlRound(const StepPlan& plan, int cohort,
                         const NetworkConfig& net, uint64_t max_ticks,
                         double ticks_per_s);

}  // namespace bagua

#endif  // BAGUA_FL_PRICING_H_
