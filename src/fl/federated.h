#ifndef BAGUA_FL_FEDERATED_H_
#define BAGUA_FL_FEDERATED_H_

#include <cstdint>
#include <vector>

#include "base/status.h"
#include "faults/fault_plan.h"
#include "fl/client.h"
#include "model/profiles.h"
#include "sched/plan.h"
#include "transport/pool.h"
#include "transport/transport.h"

namespace bagua {

/// \name FL tag helpers (allocation map: transport/transport.h)
///
/// The per-round model broadcast rides one space; each delta plan unit
/// rides its own space so a mid-upload crash leaves a deterministic
/// partial prefix in the server's inbox. `step` is the round in both.
/// @{
constexpr uint32_t kFlMaxUnits = kFlDeltaSpaceLimit - kFlDeltaSpaceBase;
constexpr uint32_t FlModelSpace() { return kFlModelSpaceBase; }
constexpr uint32_t FlDeltaSpace(uint32_t unit) {
  return kFlDeltaSpaceBase + unit;
}
static_assert(FlModelSpace() >= kFlSpaceBase &&
                  FlModelSpace() < kFlModelSpaceLimit,
              "model space must live in the fl model range");
static_assert(FlDeltaSpace(kFlMaxUnits - 1) < kFlSpaceLimit,
              "every delta unit space must live in the fl range");
/// @}

/// \brief One federated-training run: `rounds` rounds of cohort sampling,
/// client-local training and server-side weighted merge over the PS path.
///
/// Rank layout: the server is rank 0 and client c is rank c + 1, so a
/// single node drives num_clients + 1 lightweight rank contexts. Clients
/// are *intermittent*: only sampled cohort members run in a round, a
/// member that crashed mid-upload stays dead (transport MarkDead) until
/// the next round that samples it re-admits it (MarkAlive).
struct FlConfig {
  FlClientConfig client;

  int num_clients = 64;
  double participation = 0.25;  ///< cohort fraction per round
  uint64_t rounds = 5;
  /// Drives cohort sampling and global-model init. Everything else derives
  /// its streams from purpose-specific MixSeed constants, so one seed
  /// reproduces the entire run.
  uint64_t seed = 42;

  /// Data heterogeneity (model/data.h FederatedView).
  double skew = 0.5;
  size_t dataset_samples = 4096;
  uint64_t data_seed = 1234;

  /// Client-executor threads. The committed server state is bitwise
  /// independent of this (and of the claim order below): the server
  /// accumulates member deltas in ascending client order no matter which
  /// thread produced them when.
  int threads = 1;
  /// Flow control: the server keeps at most this many model broadcasts
  /// outstanding (member i + window's model ships only after member i's
  /// delta is harvested). Bounds per-size-class live pool buffers below
  /// BufferPool::kMaxFreePerClass so steady-state rounds allocate nothing.
  int flow_window = 32;
  /// Tests only: client threads claim cohort members in descending order.
  /// Forces a full upfront broadcast (the window would deadlock against a
  /// non-ascending claim order) — used to prove order-invariance.
  bool reverse_claim = false;
  /// Baseline for the fl perf gate: one client at a time on the calling
  /// thread, transport unpooled, merge per arrival. Same messages, same
  /// order — bitwise identical state, none of the overlap.
  bool naive_sequential = false;

  /// Per-(member, round) probability of a mid-round crash. Used only when
  /// `dropouts` has no rules: RunFlTraining then builds the crash plan via
  /// BuildFlDropoutPlan and records it in the report for replay.
  double dropout = 0.0;
  /// The crash schedule (kCrash rules: rank = client + 1, at_step = round).
  /// Supply a recorded plan to replay a run's dropouts exactly; the crash
  /// *unit* (how much of the upload precedes the crash) derives from
  /// `dropouts.seed`, so plan + seed fully determine the fault behavior.
  FaultPlan dropouts;
  /// Message faults (drop/duplicate/corrupt rules): when non-empty the run
  /// wraps the transport in a hardened FaultyTransport, which must not
  /// change the committed state by a single bit.
  FaultPlan message_faults;

  /// Bucket size for the round's StepPlan — the schedule IR that shapes
  /// the delta upload into per-unit messages and prices the round.
  size_t bucket_bytes = 1024;
  /// FedSGD commit scale is -server_lr (FedAvg commits at +1).
  double server_lr = 0.1;
};

/// \brief Per-round accounting, all fields deterministic for a config.
struct FlRoundStats {
  uint64_t round = 0;
  int cohort = 0;        ///< members sampled
  int participants = 0;  ///< full deltas merged
  int dropouts = 0;      ///< crashed mid-round (partial uploads discarded)
  int skipped = 0;       ///< empty-shard members (weight 0)
  int rejoins = 0;       ///< members re-admitted after an earlier crash
  int stragglers = 0;    ///< members in the slow tail of compute ticks
  double mean_loss = 0.0;      ///< mean local loss over participants
  double total_weight = 0.0;   ///< sum of merged n_k
  uint64_t max_ticks = 0;      ///< slowest member's virtual compute
  uint64_t bytes_down = 0;     ///< model broadcast bytes
  uint64_t bytes_up = 0;       ///< delta upload bytes received
};

/// \brief Result of a run. `final_model` / `model_hash` are the bitwise
/// reproducibility surface: identical across thread counts, claim orders,
/// pooling modes, and replayed dropout plans.
struct FlReport {
  std::vector<FlRoundStats> rounds;
  std::vector<float> final_model;
  uint64_t model_hash = 0;  ///< Fnv1a over final_model bytes

  uint64_t total_participants = 0;
  uint64_t total_dropouts = 0;
  uint64_t total_rejoins = 0;
  uint64_t total_stragglers = 0;

  /// The crash plan the run executed (recorded for replay).
  FaultPlan dropout_plan;
  /// Injector counters when message_faults was active (zeros otherwise).
  FaultStats fault_stats;
  PoolStats pool;
  /// Pool misses after the two warm-up rounds. The flow window bounds live
  /// buffers per size class below the pool's free-list cap, so once the
  /// free lists are populated every acquire must hit: steady state is 0.
  uint64_t pool_misses_steady = 0;
  uint64_t bytes_sent = 0;

  size_t plan_units = 0;  ///< delta messages per member per round
  double wall_s = 0.0;    ///< measured wall time (diagnostic, not golden)
};

/// The FL client model as a profiled model: one block per layer, so the
/// schedule IR's unitizers (sched/plan.h) can bucket the delta exactly as
/// they bucket training gradients.
ModelProfile BuildFlModelProfile(const FlModelConfig& model);

/// The round's communication schedule: FusedUnitsPlan over the FL model at
/// `bucket_bytes`, routed through the summation service (ServerReduce) —
/// the IR consumed by both the real executor and the round pricer.
StepPlan BuildFlRoundPlan(const FlModelConfig& model, size_t bucket_bytes);

/// Builds the seeded crash schedule for `cfg`: walks every round's cohort
/// (a pure function of cfg.seed) and flips a per-(round, member) coin at
/// cfg.dropout. Returned plan rules are sorted by (round, rank).
FaultPlan BuildFlDropoutPlan(const FlConfig& cfg);

/// \brief Runs the full federated training loop and fills `report`.
///
/// Per round: sample the cohort (sorted ascending), re-admit previously
/// crashed members, broadcast the global model under the flow window,
/// execute members on the client-thread pool, and harvest each member's
/// delta units *in ascending client order* — staging them in scratch and
/// discarding on a mid-upload crash (DataLoss) — into the PS's weighted
/// FL accumulator, committing once per round. Instrumented on the kFl
/// trace stream: fl.round[r] spans on rank 0, fl.local[r] spans on client
/// ranks, fl.* counters.
Status RunFlTraining(const FlConfig& cfg, FlReport* report);

}  // namespace bagua

#endif  // BAGUA_FL_FEDERATED_H_
