#include "base/arena.h"

#include <cstdlib>

#include <algorithm>

#include "base/logging.h"

namespace bagua {

namespace {

constexpr int kMinClassLog2 = 6;  // log2(SizeClassMap::kMinClassBytes)

int Log2Floor(size_t v) {
  int r = 0;
  while (v >>= 1) ++r;
  return r;
}

}  // namespace

int SizeClassMap::ClassIndexFor(size_t bytes) {
  if (bytes > kMaxClassBytes) return -1;
  if (bytes <= kMinClassBytes) return 0;
  const int floor = Log2Floor(bytes);
  const bool pow2 = (bytes & (bytes - 1)) == 0;
  return floor - kMinClassLog2 + (pow2 ? 0 : 1);
}

int SizeClassMap::ClassIndexOfCapacity(size_t capacity) {
  if (capacity < kMinClassBytes) return -1;
  const int idx = Log2Floor(capacity) - kMinClassLog2;
  if (idx >= kNumClasses) return -1;
  return idx;
}

size_t SizeClassMap::ClassBytesFor(size_t bytes) {
  const int idx = ClassIndexFor(bytes);
  if (idx < 0) return 0;
  return ClassCapacity(idx);
}

Arena::Arena(std::string tag) : tag_(std::move(tag)) {}

Arena::~Arena() {
  const int64_t outstanding = outstanding_.load(std::memory_order_acquire);
  if (outstanding != 0) {
    LOG_FATAL << "arena '" << tag_ << "' destroyed with " << outstanding
              << " live allocation(s); freeing them later would be a "
                 "use-after-free. Recycle every handle before teardown.";
  }
  for (auto& cls : classes_) {
    for (void* p : cls.free) std::free(p);
    cls.free.clear();
  }
}

void* Arena::Allocate(size_t bytes) {
  if (bytes == 0) return nullptr;
  const int idx = SizeClassMap::ClassIndexFor(bytes);
  const size_t rounded =
      idx >= 0 ? SizeClassMap::ClassCapacity(idx) : (bytes + 63) / 64 * 64;
  void* ptr = nullptr;
  if (idx >= 0) {
    SizeClass& cls = classes_[idx];
    std::lock_guard<std::mutex> lock(cls.mu);
    if (!cls.free.empty()) {
      ptr = cls.free.back();
      cls.free.pop_back();
    }
  }
  if (ptr != nullptr) {
    hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    if (posix_memalign(&ptr, 64, rounded) != 0 || ptr == nullptr) {
      LOG_FATAL << "arena '" << tag_ << "': posix_memalign(" << rounded
                << ") failed";
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (idx < 0) oversize_.fetch_add(1, std::memory_order_relaxed);
  }
  allocs_.fetch_add(1, std::memory_order_relaxed);
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  BumpLive(rounded);
  return ptr;
}

void Arena::Deallocate(void* ptr, size_t bytes) {
  if (ptr == nullptr || bytes == 0) return;
  const int idx = SizeClassMap::ClassIndexFor(bytes);
  const size_t rounded =
      idx >= 0 ? SizeClassMap::ClassCapacity(idx) : (bytes + 63) / 64 * 64;
  frees_.fetch_add(1, std::memory_order_relaxed);
  outstanding_.fetch_sub(1, std::memory_order_acq_rel);
  DropLive(rounded);
  if (idx >= 0) {
    SizeClass& cls = classes_[idx];
    std::lock_guard<std::mutex> lock(cls.mu);
    if (cls.free.size() < static_cast<size_t>(kMaxFreePerClass)) {
      cls.free.push_back(ptr);
      return;
    }
  }
  if (idx >= 0) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    dropped_bytes_.fetch_add(rounded, std::memory_order_relaxed);
  }
  std::free(ptr);
}

void Arena::NoteExternalAlloc(size_t bytes) {
  if (bytes == 0) return;
  BumpLive(bytes);
}

void Arena::NoteExternalFree(size_t bytes) {
  if (bytes == 0) return;
  // Saturate at zero: a sloppy owner must not wrap the gauge to 2^64.
  uint64_t cur = live_bytes_.load(std::memory_order_relaxed);
  while (true) {
    const uint64_t drop = std::min<uint64_t>(cur, bytes);
    if (live_bytes_.compare_exchange_weak(cur, cur - drop,
                                          std::memory_order_relaxed)) {
      return;
    }
  }
}

void Arena::ResetPeakBytes() {
  peak_bytes_.store(live_bytes_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
}

ArenaStats Arena::stats() const {
  ArenaStats s;
  s.allocs = allocs_.load(std::memory_order_relaxed);
  s.frees = frees_.load(std::memory_order_relaxed);
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.oversize = oversize_.load(std::memory_order_relaxed);
  s.dropped = dropped_.load(std::memory_order_relaxed);
  s.dropped_bytes = dropped_bytes_.load(std::memory_order_relaxed);
  s.live_bytes = live_bytes_.load(std::memory_order_relaxed);
  s.peak_bytes = peak_bytes_.load(std::memory_order_relaxed);
  return s;
}

int Arena::FreeInClassFor(size_t bytes) const {
  const int idx = SizeClassMap::ClassIndexFor(bytes);
  if (idx < 0) return 0;
  auto& cls = const_cast<Arena*>(this)->classes_[idx];
  std::lock_guard<std::mutex> lock(cls.mu);
  return static_cast<int>(cls.free.size());
}

void Arena::BumpLive(size_t bytes) {
  const uint64_t live =
      live_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  uint64_t peak = peak_bytes_.load(std::memory_order_relaxed);
  while (live > peak &&
         !peak_bytes_.compare_exchange_weak(peak, live,
                                            std::memory_order_relaxed)) {
  }
}

void Arena::DropLive(size_t bytes) {
  live_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
}

MemoryRegistry& MemoryRegistry::Global() {
  // Heap-allocated and never destroyed: arenas must outlive every static
  // object that might hold a handle, so teardown order can't bite.
  static MemoryRegistry* registry = new MemoryRegistry();
  return *registry;
}

Arena& MemoryRegistry::ArenaFor(const std::string& tag) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Arena* a : arenas_) {
    if (a->tag() == tag) return *a;
  }
  arenas_.push_back(new Arena(tag));
  return *arenas_.back();
}

Arena& MemoryRegistry::Register(const std::string& tag) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Arena* a : arenas_) {
    if (a->tag() == tag) {
      LOG_FATAL << "memory registry: tag '" << tag
                << "' registered twice; two subsystems would double-count "
                   "one arena. Pick a distinct tag.";
    }
  }
  arenas_.push_back(new Arena(tag));
  return *arenas_.back();
}

std::vector<ArenaSnapshot> MemoryRegistry::Snapshot() const {
  std::vector<ArenaSnapshot> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(arenas_.size());
    for (Arena* a : arenas_) out.push_back({a->tag(), a->stats()});
  }
  std::sort(out.begin(), out.end(),
            [](const ArenaSnapshot& a, const ArenaSnapshot& b) {
              return a.tag < b.tag;
            });
  return out;
}

Arena& TensorArena() {
  static Arena* arena = &MemoryRegistry::Global().ArenaFor("tensor");
  return *arena;
}

}  // namespace bagua
