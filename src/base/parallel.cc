#include "base/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace bagua {

namespace {

// Set while the current thread executes a parallel region body (either as
// a pool worker or as the calling participant). Nested ParallelBlocks
// calls observe it and degrade to inline execution.
thread_local bool tls_in_region = false;

constexpr int kMaxThreads = 256;

int ClampThreads(long v) {
  if (v < 1) return 1;
  if (v > kMaxThreads) return kMaxThreads;
  return static_cast<int>(v);
}

}  // namespace

struct ThreadPool::Job {
  const std::function<void(size_t, size_t, size_t)>* fn = nullptr;
  size_t n = 0;
  size_t grain = 0;
  size_t num_blocks = 0;
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  // First (lowest-block) exception wins, so which error surfaces does not
  // depend on thread scheduling.
  std::mutex err_mu;
  size_t err_block = std::numeric_limits<size_t>::max();
  std::exception_ptr err;
};

struct ThreadPool::Impl {
  std::mutex mu;
  std::condition_variable work_cv;   // workers wait for a new job
  std::condition_variable done_cv;   // the caller waits for completion
  // shared_ptr: a straggler worker may still hold the job object after
  // the caller's region returned. It never runs user code then (every
  // block is claimed before the caller is released), but it does touch
  // the job's atomics, so the object must outlive the region.
  std::shared_ptr<Job> current;
  uint64_t job_seq = 0;
  bool stop = false;
  // Serializes regions: concurrent callers (worker ranks) that lose the
  // race run inline instead of queueing.
  std::mutex region_mu;
  std::vector<std::thread> workers;
};

ThreadPool::ThreadPool(int num_threads)
    : impl_(new Impl), num_threads_(ClampThreads(num_threads)) {
  for (int t = 1; t < num_threads_; ++t) {
    impl_->workers.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->stop = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& w : impl_->workers) w.join();
  delete impl_;
}

size_t ThreadPool::NumBlocks(size_t n, size_t grain) {
  if (n == 0) return 0;
  if (grain == 0) grain = 1;
  return (n + grain - 1) / grain;
}

bool ThreadPool::InParallelRegion() { return tls_in_region; }

void ThreadPool::RunInline(
    size_t n, size_t grain,
    const std::function<void(size_t, size_t, size_t)>& fn) {
  if (grain == 0) grain = 1;
  const size_t num_blocks = NumBlocks(n, grain);
  const bool outermost = !tls_in_region;
  if (outermost) tls_in_region = true;
  struct Restore {
    bool outermost;
    ~Restore() {
      if (outermost) tls_in_region = false;
    }
  } restore{outermost};
  for (size_t b = 0; b < num_blocks; ++b) {
    const size_t begin = b * grain;
    const size_t end = begin + grain < n ? begin + grain : n;
    fn(b, begin, end);  // exceptions propagate directly: same-thread call
  }
}

void ThreadPool::RunBlocks(Job* job) {
  tls_in_region = true;
  for (;;) {
    const size_t b = job->next.fetch_add(1, std::memory_order_relaxed);
    if (b >= job->num_blocks) break;
    const size_t begin = b * job->grain;
    const size_t end =
        begin + job->grain < job->n ? begin + job->grain : job->n;
    try {
      (*job->fn)(b, begin, end);
    } catch (...) {
      std::lock_guard<std::mutex> lk(job->err_mu);
      if (b < job->err_block) {
        job->err_block = b;
        job->err = std::current_exception();
      }
    }
    if (job->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job->num_blocks) {
      std::lock_guard<std::mutex> lk(impl_->mu);
      impl_->done_cv.notify_all();
    }
  }
  tls_in_region = false;
}

void ThreadPool::WorkerLoop() {
  uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lk(impl_->mu);
      impl_->work_cv.wait(lk, [&] {
        return impl_->stop ||
               (impl_->current != nullptr && impl_->job_seq != seen);
      });
      if (impl_->stop) return;
      job = impl_->current;
      seen = impl_->job_seq;
    }
    RunBlocks(job.get());
  }
}

void ThreadPool::ParallelBlocks(
    size_t n, size_t grain,
    const std::function<void(size_t, size_t, size_t)>& fn) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const size_t num_blocks = NumBlocks(n, grain);
  // Inline paths: one block, one thread, nested use, or pool busy with
  // another rank's region. All produce the same bytes as the pooled path.
  if (num_blocks == 1 || num_threads_ <= 1 || tls_in_region ||
      !impl_->region_mu.try_lock()) {
    RunInline(n, grain, fn);
    return;
  }
  std::lock_guard<std::mutex> region(impl_->region_mu, std::adopt_lock);

  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->n = n;
  job->grain = grain;
  job->num_blocks = num_blocks;
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->current = job;
    ++impl_->job_seq;
  }
  impl_->work_cv.notify_all();

  RunBlocks(job.get());  // the caller participates

  {
    std::unique_lock<std::mutex> lk(impl_->mu);
    impl_->done_cv.wait(lk, [&] {
      return job->done.load(std::memory_order_acquire) == job->num_blocks;
    });
    // Stragglers may outlive the region holding their own reference; the
    // caller's `fn` is safe because every block is claimed by now.
    impl_->current.reset();
  }
  if (job->err) std::rethrow_exception(job->err);
}

namespace {

std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;
int g_threads = 0;  // 0 = not yet resolved / reset to env

int ResolveThreadsLocked() {
  if (g_threads > 0) return g_threads;
  int n = 1;
  if (const char* env = std::getenv("BAGUA_INTRA_OP_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v > 0) n = ClampThreads(v);
  }
  g_threads = n;
  return g_threads;
}

}  // namespace

int IntraOpThreads() {
  std::lock_guard<std::mutex> lk(g_pool_mu);
  return ResolveThreadsLocked();
}

void SetIntraOpThreads(int n) {
  std::lock_guard<std::mutex> lk(g_pool_mu);
  const int resolved = n > 0 ? ClampThreads(n) : 0;
  if (resolved != 0 && resolved == g_threads && g_pool != nullptr) return;
  g_threads = resolved;
  g_pool.reset();  // next IntraOpPool() rebuilds at the new size
}

ThreadPool* IntraOpPool() {
  std::lock_guard<std::mutex> lk(g_pool_mu);
  if (g_pool == nullptr) {
    g_pool = std::make_unique<ThreadPool>(ResolveThreadsLocked());
  }
  return g_pool.get();
}

void IntraOpFor(size_t n, size_t grain,
                const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  if (n <= grain || IntraOpThreads() <= 1 || ThreadPool::InParallelRegion()) {
    fn(0, n);
    return;
  }
  IntraOpPool()->ParallelBlocks(
      n, grain, [&](size_t, size_t begin, size_t end) { fn(begin, end); });
}

void IntraOpBlocks(size_t n, size_t grain,
                   const std::function<void(size_t, size_t, size_t)>& fn) {
  if (n == 0) return;
  // ParallelBlocks itself degrades to the same sequential block walk for
  // single-thread pools and nested callers.
  IntraOpPool()->ParallelBlocks(n, grain, fn);
}

}  // namespace bagua
