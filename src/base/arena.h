#ifndef BAGUA_BASE_ARENA_H_
#define BAGUA_BASE_ARENA_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace bagua {

/// \brief Shared size-class geometry for every pooled allocator in the tree.
///
/// Both the raw-block Arena below and the transport BufferPool bucket
/// requests into the same 21 power-of-two classes, 64 B .. 64 MiB. Keeping
/// the math in one place guarantees the two layers agree on what "fits a
/// class" means, so bytes attributed across layers add up.
struct SizeClassMap {
  static constexpr size_t kMinClassBytes = 1ull << 6;   // 64 B
  static constexpr size_t kMaxClassBytes = 1ull << 26;  // 64 MiB
  static constexpr int kNumClasses = 21;                // 2^6 .. 2^26

  /// Class index serving `bytes`, or -1 if larger than the largest class.
  /// Zero-byte requests map to class 0.
  static int ClassIndexFor(size_t bytes);

  /// Class index whose capacity is exactly representable by `capacity`
  /// (i.e. the class a block of that many bytes parks in), or -1 if the
  /// capacity is below the smallest class or above the largest.
  static int ClassIndexOfCapacity(size_t capacity);

  /// Rounded-up class capacity serving `bytes`, or 0 if oversize.
  static size_t ClassBytesFor(size_t bytes);

  /// Capacity of class `idx` (no bounds check beyond debug assertions).
  static size_t ClassCapacity(int idx) { return kMinClassBytes << idx; }
};

/// \brief Monotonic counters + live/peak gauges for one arena.
///
/// `live_bytes`/`peak_bytes` include bytes "noted" by external owners (see
/// Arena::NoteExternalAlloc) so a subsystem whose storage is still owned by
/// std::vector (e.g. the transport pool free lists) attributes honestly.
struct ArenaStats {
  uint64_t allocs = 0;       ///< Allocate() calls that returned storage.
  uint64_t frees = 0;        ///< Deallocate() calls that released storage.
  uint64_t hits = 0;         ///< Allocations served from a free list.
  uint64_t misses = 0;       ///< Allocations that had to go to the OS.
  uint64_t oversize = 0;     ///< Allocations above the largest size class.
  uint64_t dropped = 0;      ///< Freed blocks released because a class was full.
  uint64_t dropped_bytes = 0;  ///< Capacity of those released blocks.
  uint64_t live_bytes = 0;   ///< Bytes currently allocated (incl. external).
  uint64_t peak_bytes = 0;   ///< High-water mark of live_bytes.
};

/// \brief A size-classed, recycling arena for 64-byte-aligned raw blocks.
///
/// Allocate() rounds the request up to a power-of-two class and serves it
/// from a per-class LIFO free list when possible (a *hit*); otherwise it
/// takes one posix_memalign (a *miss*). Deallocate() parks the block back
/// in its class, capped at kMaxFreePerClass blocks per class, so steady
/// state footprint is bounded and steady-state allocation count is zero —
/// the property `bench/mem_gate.h` asserts for the whole training step.
///
/// Returned memory is *uninitialized* (recycled blocks hold stale bytes);
/// callers that need zeroed storage must memset, exactly as they must with
/// the transport pool. Arena placement therefore cannot alter numerics:
/// every consumer overwrites before reading.
///
/// Thread safety: all methods are safe for concurrent use (per-class
/// mutexes, relaxed atomics for stats). Reuse *order* under contention is
/// scheduling-dependent, which is why arena stats are exported as trace
/// gauges, never counters (counters must merge byte-identically).
class Arena {
 public:
  static constexpr int kMaxFreePerClass = 64;

  explicit Arena(std::string tag);

  /// Aborts with a diagnostic if blocks are still outstanding: destroying
  /// an arena under live handles would turn every one of them into a
  /// use-after-free, so we fail loudly instead of exhibiting UB.
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns a 64-byte-aligned block of at least `bytes` bytes
  /// (uninitialized), or nullptr when `bytes == 0` (no counters touched).
  /// Oversize requests (> kMaxClassBytes) are served exactly, bypass the
  /// free lists, and count as both a miss and an `oversize`.
  void* Allocate(size_t bytes);

  /// Returns a block obtained from Allocate(`bytes`). `bytes` must be the
  /// same value passed to Allocate — the class is recomputed from it.
  /// nullptr / zero-byte pairs are ignored.
  void Deallocate(void* ptr, size_t bytes);

  /// Attributes `bytes` owned by an external container (e.g. a
  /// std::vector free list) to this arena's live/peak gauges without the
  /// arena owning the storage. Pairs with NoteExternalFree.
  void NoteExternalAlloc(size_t bytes);

  /// Reverse of NoteExternalAlloc. Saturates at zero rather than
  /// underflowing if an owner releases more than it noted.
  void NoteExternalFree(size_t bytes);

  ArenaStats stats() const;

  /// Rebases the peak gauge to the current live bytes, so a report can
  /// measure the high-water mark of one workload phase instead of the
  /// whole process (e.g. mem_gate excludes its own free-list priming).
  /// Call only while the arena is quiescent.
  void ResetPeakBytes();

  /// Number of parked free blocks in the class serving `bytes` (testing).
  int FreeInClassFor(size_t bytes) const;

  const std::string& tag() const { return tag_; }

 private:
  void BumpLive(size_t bytes);
  void DropLive(size_t bytes);

  struct SizeClass {
    std::mutex mu;
    std::vector<void*> free;
  };

  std::string tag_;
  SizeClass classes_[SizeClassMap::kNumClasses];

  std::atomic<uint64_t> allocs_{0};
  std::atomic<uint64_t> frees_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> oversize_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> dropped_bytes_{0};
  std::atomic<uint64_t> live_bytes_{0};
  std::atomic<uint64_t> peak_bytes_{0};
  std::atomic<int64_t> outstanding_{0};  ///< Allocated-but-not-freed blocks.
};

/// \brief One (tag, stats) row of a registry snapshot.
struct ArenaSnapshot {
  std::string tag;
  ArenaStats stats;
};

/// \brief Process-wide map from subsystem tag to its arena.
///
/// Tags name subsystems ("tensor", "transport", "comm", "compress", "fl",
/// "serve", "serve.cache", ...). ArenaFor() creates an arena on first use;
/// Register() creates one explicitly and aborts on a tag collision so two
/// subsystems cannot silently share (and double-count) one arena. Arenas
/// live for the process lifetime — they are deliberately leaked at exit so
/// static-destruction order can never tear an arena down under a live
/// handle.
class MemoryRegistry {
 public:
  static MemoryRegistry& Global();

  /// Returns the arena for `tag`, creating it on first use.
  Arena& ArenaFor(const std::string& tag);

  /// Creates the arena for `tag`; aborts if the tag is already registered.
  Arena& Register(const std::string& tag);

  /// Stats for every registered arena, sorted by tag.
  std::vector<ArenaSnapshot> Snapshot() const;

 private:
  MemoryRegistry() = default;

  mutable std::mutex mu_;
  std::vector<Arena*> arenas_;  // Sorted insertion not required; looked up linearly.
};

/// Convenience accessors for the hot, always-present subsystem arenas.
Arena& TensorArena();

/// \brief RAII scratch block drawn from a subsystem arena.
///
/// The arena analogue of transport's PooledScratch: acquire in the
/// constructor, recycle in the destructor, contents uninitialized. Use for
/// per-call scratch in compressors, collectives and fl so steady-state
/// steps allocate nothing.
class ArenaScratch {
 public:
  ArenaScratch(Arena* arena, size_t bytes)
      : arena_(arena), bytes_(bytes), ptr_(arena->Allocate(bytes)) {}
  ArenaScratch(const std::string& tag, size_t bytes)
      : ArenaScratch(&MemoryRegistry::Global().ArenaFor(tag), bytes) {}

  ~ArenaScratch() { arena_->Deallocate(ptr_, bytes_); }

  ArenaScratch(const ArenaScratch&) = delete;
  ArenaScratch& operator=(const ArenaScratch&) = delete;

  uint8_t* bytes() { return static_cast<uint8_t*>(ptr_); }
  float* floats() { return static_cast<float*>(ptr_); }
  double* doubles() { return static_cast<double*>(ptr_); }
  uint32_t* u32() { return static_cast<uint32_t*>(ptr_); }
  size_t size_bytes() const { return bytes_; }

 private:
  Arena* arena_;
  size_t bytes_;
  void* ptr_;
};

}  // namespace bagua

#endif  // BAGUA_BASE_ARENA_H_
