#ifndef BAGUA_BASE_STATUS_H_
#define BAGUA_BASE_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace bagua {

/// \brief Error categories used across the library.
///
/// Follows the Arrow/RocksDB convention: library code reports failures
/// through Status/Result values rather than exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
  kCancelled,
  kTimedOut,
  kIoError,
  /// A receive (or ack wait) did not complete before its deadline. Unlike
  /// kTimedOut (generic), this is the retryable signal of the fault-
  /// tolerant transport paths (faults/): callers may back off and retry.
  kDeadlineExceeded,
  /// Data was irrecoverably lost: a peer died, a message exhausted its
  /// retransmission budget, or a checksum failed with no copy left. The
  /// unrecoverable terminal case of the fault-tolerance protocols.
  kDataLoss,
};

/// \brief Returns a human-readable name for a status code, e.g.
/// "InvalidArgument".
const char* StatusCodeName(StatusCode code);

/// \brief A success-or-error value returned by fallible operations.
///
/// A default-constructed Status is OK and carries no allocation. Error
/// statuses carry a code and a message. Statuses are cheap to move and to
/// copy in the OK case.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsTimedOut() const { return code_ == StatusCode::kTimedOut; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsDataLoss() const { return code_ == StatusCode::kDataLoss; }

  /// \brief Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// \brief Holds either a value of type T or an error Status.
///
/// The canonical way to return a fallible value:
///
///   Result<Tensor> MakeTensor(size_t n);
///   ASSIGN_OR_RETURN(Tensor t, MakeTensor(16));
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}        // NOLINT
  Result(Status status) : value_(std::move(status)) {  // NOLINT
    // An OK status carries no value; normalize to an error so that callers
    // never observe ok() with no value.
    if (std::get<Status>(value_).ok()) {
      value_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(value_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(value_);
  }

  T& value() & { return std::get<T>(value_); }
  const T& value() const& { return std::get<T>(value_); }
  T&& value() && { return std::get<T>(std::move(value_)); }

  T ValueOr(T fallback) const {
    if (ok()) return value();
    return fallback;
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> value_;
};

#define BAGUA_CONCAT_IMPL(a, b) a##b
#define BAGUA_CONCAT(a, b) BAGUA_CONCAT_IMPL(a, b)

/// Propagates a non-OK Status to the caller.
#define RETURN_IF_ERROR(expr)                       \
  do {                                              \
    ::bagua::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                      \
  } while (0)

/// Evaluates a Result<T> expression; on error returns the Status, otherwise
/// binds the value to `lhs`.
#define ASSIGN_OR_RETURN(lhs, rexpr) \
  ASSIGN_OR_RETURN_IMPL(BAGUA_CONCAT(_result_, __LINE__), lhs, rexpr)

#define ASSIGN_OR_RETURN_IMPL(result, lhs, rexpr) \
  auto result = (rexpr);                          \
  if (!result.ok()) return result.status();       \
  lhs = std::move(result).value();

}  // namespace bagua

#endif  // BAGUA_BASE_STATUS_H_
