#ifndef BAGUA_BASE_RNG_H_
#define BAGUA_BASE_RNG_H_

#include <cstdint>
#include <cstddef>

namespace bagua {

/// \brief Deterministic, fast pseudo-random generator (xoshiro256**),
/// seeded via splitmix64.
///
/// All randomized components in the library (stochastic quantization,
/// random peer selection, synthetic data, initialization) draw from Rng
/// instances with explicit seeds, so every experiment is reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) { Seed(seed); }

  void Seed(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform float in [0, 1).
  float UniformFloat() { return static_cast<float>(Uniform()); }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal variate (Box-Muller, cached pair).
  double Normal();
  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Fisher-Yates shuffle of indices [0, n) written into `out`.
  void Permutation(size_t n, uint32_t* out);

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// \brief Mixes two seeds into one (for deriving per-rank / per-iteration
/// streams from a base seed).
uint64_t MixSeed(uint64_t a, uint64_t b);

}  // namespace bagua

#endif  // BAGUA_BASE_RNG_H_
