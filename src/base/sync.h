#ifndef BAGUA_BASE_SYNC_H_
#define BAGUA_BASE_SYNC_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>

namespace bagua {

/// \brief Reusable barrier for a fixed party count.
///
/// Worker threads in the simulated cluster synchronize iteration phases with
/// this. A generation counter makes the barrier safely reusable.
class Barrier {
 public:
  explicit Barrier(size_t num_parties);

  /// Blocks until `num_parties` threads have arrived. Returns true on the
  /// thread that released the barrier (the last arriver).
  bool Wait();

  size_t num_parties() const { return num_parties_; }

 private:
  const size_t num_parties_;
  std::mutex mu_;
  std::condition_variable cv_;
  size_t arrived_ = 0;
  uint64_t generation_ = 0;
};

/// \brief Single-use countdown latch.
class Latch {
 public:
  explicit Latch(size_t count);

  void CountDown();
  void Wait();
  bool TryWait();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  size_t count_;
};

/// \brief Runs `fn(rank)` on `n` threads and joins them all.
///
/// The canonical way tests and examples spin up a simulated cluster.
void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

}  // namespace bagua

#endif  // BAGUA_BASE_SYNC_H_
