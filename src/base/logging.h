#ifndef BAGUA_BASE_LOGGING_H_
#define BAGUA_BASE_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace bagua {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// \brief Sets the global minimum level at which messages are emitted.
/// Defaults to kInfo; tests lower it to silence expected warnings.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink. Emits on destruction; aborts for kFatal.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the level is disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

#define BAGUA_LOG_INTERNAL(level) \
  ::bagua::internal::LogMessage(level, __FILE__, __LINE__).stream()

#define LOG_DEBUG BAGUA_LOG_INTERNAL(::bagua::LogLevel::kDebug)
#define LOG_INFO BAGUA_LOG_INTERNAL(::bagua::LogLevel::kInfo)
#define LOG_WARNING BAGUA_LOG_INTERNAL(::bagua::LogLevel::kWarning)
#define LOG_ERROR BAGUA_LOG_INTERNAL(::bagua::LogLevel::kError)
#define LOG_FATAL BAGUA_LOG_INTERNAL(::bagua::LogLevel::kFatal)

/// Invariant check for programmer errors (not data errors — those go through
/// Status). Enabled in all build types.
#define BAGUA_CHECK(cond)                                          \
  if (!(cond))                                                     \
  BAGUA_LOG_INTERNAL(::bagua::LogLevel::kFatal)                    \
      << "Check failed: " #cond " "

#define BAGUA_CHECK_EQ(a, b) BAGUA_CHECK((a) == (b))
#define BAGUA_CHECK_NE(a, b) BAGUA_CHECK((a) != (b))
#define BAGUA_CHECK_LT(a, b) BAGUA_CHECK((a) < (b))
#define BAGUA_CHECK_LE(a, b) BAGUA_CHECK((a) <= (b))
#define BAGUA_CHECK_GT(a, b) BAGUA_CHECK((a) > (b))
#define BAGUA_CHECK_GE(a, b) BAGUA_CHECK((a) >= (b))

}  // namespace bagua

#endif  // BAGUA_BASE_LOGGING_H_
