#ifndef BAGUA_BASE_PARALLEL_H_
#define BAGUA_BASE_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace bagua {

/// \brief Deterministic intra-op thread pool.
///
/// This is the compute-side counterpart of the simulated cluster's
/// inter-rank threads (base/sync.h): it parallelizes the *inside* of one
/// kernel invocation — GEMM row panels, compressor blocks, optimizer
/// chunks — the way a GPU parallelizes a kernel across SMs.
///
/// Determinism is the design constraint, not an afterthought. Work is
/// always split into **fixed-size blocks whose geometry depends only on
/// (n, grain)** — never on the number of threads — and every block writes
/// a disjoint output range (or produces a partial indexed by its block
/// id, combined later in block order). Which thread executes which block
/// is scheduling-dependent, but the bytes produced are not, so any kernel
/// built on this pool yields byte-identical results for 1, 2 or 64
/// threads. tests/parallel_test.cc and tests/kernels_test.cc enforce
/// this.
///
/// One pool is shared process-wide across all simulated worker ranks
/// (IntraOpPool). Concurrent parallel regions do not interleave inside
/// the pool: a rank that cannot acquire the pool runs its region inline
/// on its own thread — same blocks, same bytes — so ranks never deadlock
/// on each other and never change each other's results.
class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers (the caller of a parallel region is
  /// always the remaining participant). `num_threads <= 1` means every
  /// region runs inline.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Number of fixed-size blocks [0, n) splits into: ceil(n / grain).
  static size_t NumBlocks(size_t n, size_t grain);

  /// Runs `fn(block, begin, end)` for every block of [0, n), where block
  /// `b` covers [b*grain, min(n, (b+1)*grain)). Blocks may run on any
  /// participating thread and in any order; the partition itself is a
  /// pure function of (n, grain).
  ///
  /// Runs inline (sequentially, same blocks) when: the pool has one
  /// thread, there is only one block, the caller is already inside a
  /// parallel region (nested use), or another thread holds the pool.
  ///
  /// If `fn` throws, the exception from the lowest-numbered throwing
  /// block is rethrown on the caller after all blocks finished — which
  /// exception escapes is deterministic even when several blocks throw.
  void ParallelBlocks(size_t n, size_t grain,
                      const std::function<void(size_t, size_t, size_t)>& fn);

  /// True while the calling thread is executing inside a parallel region
  /// of *any* ThreadPool (used for nested-use rejection).
  static bool InParallelRegion();

 private:
  struct Job;
  void WorkerLoop();
  void RunBlocks(Job* job);
  void RunInline(size_t n, size_t grain,
                 const std::function<void(size_t, size_t, size_t)>& fn);

  struct Impl;
  Impl* impl_;
  int num_threads_;
};

/// \name Process-wide intra-op parallelism configuration.
///
/// The thread count resolves, in order: SetIntraOpThreads() if called,
/// else the BAGUA_INTRA_OP_THREADS environment variable, else 1
/// (single-threaded — the deterministic default on CI boxes). Values are
/// clamped to [1, 256].
/// @{

/// Current intra-op thread count.
int IntraOpThreads();

/// Overrides the intra-op thread count and rebuilds the shared pool.
/// Must not be called while any parallel region is running (the harness
/// calls it before spawning worker ranks; tests call it between runs).
/// `n <= 0` resets to the environment/default resolution.
void SetIntraOpThreads(int n);

/// The shared pool, created on first use with IntraOpThreads() threads.
ThreadPool* IntraOpPool();
/// @}

/// Default grain for elementwise kernels: small enough to split real
/// tensors, large enough that a block amortizes the dispatch cost.
constexpr size_t kElementwiseGrain = size_t{1} << 14;

/// \brief Fixed-grain parallel-for over [0, n): runs `fn(begin, end)` on
/// each block via the shared pool. Geometry depends only on (n, grain),
/// so disjoint-write bodies are byte-deterministic at any thread count.
/// Runs inline when n <= grain or only one thread is configured.
void IntraOpFor(size_t n, size_t grain,
                const std::function<void(size_t, size_t)>& fn);

/// Same, exposing the block index (for bodies that produce one partial
/// per block, to be combined in block order).
void IntraOpBlocks(size_t n, size_t grain,
                   const std::function<void(size_t, size_t, size_t)>& fn);

}  // namespace bagua

#endif  // BAGUA_BASE_PARALLEL_H_
