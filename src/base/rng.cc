#include "base/rng.h"

#include <cmath>

#include "base/logging.h"

namespace bagua {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
  has_cached_normal_ = false;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits → double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

uint64_t Rng::UniformInt(uint64_t n) {
  BAGUA_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

void Rng::Permutation(size_t n, uint32_t* out) {
  for (size_t i = 0; i < n; ++i) out[i] = static_cast<uint32_t>(i);
  for (size_t i = n; i > 1; --i) {
    const size_t j = static_cast<size_t>(UniformInt(i));
    const uint32_t tmp = out[i - 1];
    out[i - 1] = out[j];
    out[j] = tmp;
  }
}

uint64_t MixSeed(uint64_t a, uint64_t b) {
  uint64_t sm = a ^ (b + 0x9E3779B97F4A7C15ull + (a << 6) + (a >> 2));
  return SplitMix64(&sm);
}

}  // namespace bagua
