#ifndef BAGUA_BASE_STRINGS_H_
#define BAGUA_BASE_STRINGS_H_

#include <cstdarg>
#include <string>
#include <vector>

namespace bagua {

/// \brief printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// \brief Joins pieces with a separator.
std::string StrJoin(const std::vector<std::string>& pieces,
                    const std::string& sep);

/// \brief Renders a byte count as a human-readable size ("1.25 GB").
std::string HumanBytes(double bytes);

/// \brief Renders a duration in seconds as "12.3 ms" / "4.56 s" etc.
std::string HumanSeconds(double seconds);

}  // namespace bagua

#endif  // BAGUA_BASE_STRINGS_H_
