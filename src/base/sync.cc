#include "base/sync.h"

#include <thread>
#include <vector>

#include "base/logging.h"

namespace bagua {

Barrier::Barrier(size_t num_parties) : num_parties_(num_parties) {
  BAGUA_CHECK_GT(num_parties, 0u);
}

bool Barrier::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  const uint64_t gen = generation_;
  if (++arrived_ == num_parties_) {
    ++generation_;
    arrived_ = 0;
    cv_.notify_all();
    return true;
  }
  cv_.wait(lock, [&] { return generation_ != gen; });
  return false;
}

Latch::Latch(size_t count) : count_(count) {}

void Latch::CountDown() {
  std::lock_guard<std::mutex> lock(mu_);
  BAGUA_CHECK_GT(count_, 0u);
  if (--count_ == 0) cv_.notify_all();
}

void Latch::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return count_ == 0; });
}

bool Latch::TryWait() {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ == 0;
}

void ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads.emplace_back([&fn, i] { fn(i); });
  }
  for (auto& t : threads) t.join();
}

}  // namespace bagua
