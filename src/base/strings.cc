#include "base/strings.h"

#include <cstdio>

namespace bagua {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string StrJoin(const std::vector<std::string>& pieces,
                    const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string HumanBytes(double bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  return StrFormat("%.2f %s", bytes, units[u]);
}

std::string HumanSeconds(double seconds) {
  if (seconds < 1e-6) return StrFormat("%.1f ns", seconds * 1e9);
  if (seconds < 1e-3) return StrFormat("%.2f us", seconds * 1e6);
  if (seconds < 1.0) return StrFormat("%.2f ms", seconds * 1e3);
  return StrFormat("%.2f s", seconds);
}

}  // namespace bagua
