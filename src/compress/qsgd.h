#ifndef BAGUA_COMPRESS_QSGD_H_
#define BAGUA_COMPRESS_QSGD_H_

#include "compress/compressor.h"

namespace bagua {

/// \brief QSGD stochastic quantizer (Alistarh et al., NeurIPS 2017).
///
/// Elements are processed in blocks of `block_size`. Each block stores its
/// max-magnitude scale (float) followed by one signed `bits`-bit level per
/// element. Levels are assigned by *stochastic rounding*, which makes the
/// codec unbiased: E[decode(encode(x))] = x. The paper's "QSGD" algorithm
/// uses the 8-bit configuration.
class QsgdCompressor : public Compressor {
 public:
  /// \param bits level width; supported: 2, 4, 8 (signed levels).
  /// \param block_size elements per scale block.
  explicit QsgdCompressor(int bits = 8, size_t block_size = 512);

  const char* name() const override { return name_.c_str(); }
  size_t CompressedBytes(size_t n) const override;
  Status Compress(const float* in, size_t n, Rng* rng,
                  std::vector<uint8_t>* out) const override;
  Status Decompress(const uint8_t* in, size_t bytes, size_t n,
                    float* out) const override;

  int bits() const { return bits_; }
  size_t block_size() const { return block_size_; }

 private:
  int bits_;
  size_t block_size_;
  int levels_;  // quantization levels per sign: 2^(bits-1) - 1
  std::string name_;
};

}  // namespace bagua

#endif  // BAGUA_COMPRESS_QSGD_H_
