#include "compress/onebit.h"

#include <cmath>
#include <cstring>

#include <algorithm>

#include "base/logging.h"
#include "base/parallel.h"
#include "base/strings.h"

namespace bagua {

OneBitCompressor::OneBitCompressor(size_t block_size)
    : block_size_(block_size) {
  BAGUA_CHECK_GT(block_size, 0u);
}

size_t OneBitCompressor::CompressedBytes(size_t n) const {
  const size_t num_blocks = (n + block_size_ - 1) / block_size_;
  return num_blocks * 2 * sizeof(float) + (n + 7) / 8;
}

Status OneBitCompressor::Compress(const float* in, size_t n, Rng* /*rng*/,
                                  std::vector<uint8_t>* out) const {
  const size_t num_blocks = (n + block_size_ - 1) / block_size_;
  out->assign(CompressedBytes(n), 0);
  float* scales = reinterpret_cast<float*>(out->data());
  uint8_t* bits = out->data() + num_blocks * 2 * sizeof(float);

  // Pass 1 — per-block mean magnitudes. Blocks write disjoint scale
  // slots, and each block's accumulation order is fixed, so the payload
  // is identical at any intra-op thread count.
  IntraOpBlocks(num_blocks, 1, [&](size_t b, size_t, size_t) {
    const size_t begin = b * block_size_;
    const size_t end = std::min(n, begin + block_size_);
    double pos_sum = 0.0, neg_sum = 0.0;
    size_t pos_cnt = 0, neg_cnt = 0;
    for (size_t i = begin; i < end; ++i) {
      if (in[i] >= 0.0f) {
        pos_sum += in[i];
        ++pos_cnt;
      } else {
        neg_sum -= in[i];
        ++neg_cnt;
      }
    }
    scales[2 * b] =
        pos_cnt > 0 ? static_cast<float>(pos_sum / pos_cnt) : 0.0f;
    scales[2 * b + 1] =
        neg_cnt > 0 ? static_cast<float>(neg_sum / neg_cnt) : 0.0f;
  });
  // Pass 2 — sign bits. A bit depends only on in[i], so the split is by
  // whole bit-bytes (never by scale block): two compress blocks may share
  // a byte when block_size % 8 != 0, but two byte-chunks never do.
  const size_t num_bytes = (n + 7) / 8;
  IntraOpFor(num_bytes, size_t{1} << 12, [&](size_t begin, size_t end) {
    for (size_t byte = begin; byte < end; ++byte) {
      const size_t lo = byte * 8;
      const size_t hi = std::min(n, lo + 8);
      uint8_t packed = 0;
      for (size_t i = lo; i < hi; ++i) {
        if (in[i] >= 0.0f) packed |= static_cast<uint8_t>(1u << (i % 8));
      }
      bits[byte] = packed;
    }
  });
  return Status::OK();
}

Status OneBitCompressor::Decompress(const uint8_t* in, size_t bytes, size_t n,
                                    float* out) const {
  if (bytes != CompressedBytes(n)) {
    return Status::InvalidArgument(
        StrFormat("onebit payload %zu bytes, want %zu for n=%zu", bytes,
                  CompressedBytes(n), n));
  }
  const size_t num_blocks = (n + block_size_ - 1) / block_size_;
  const float* scales = reinterpret_cast<const float*>(in);
  const uint8_t* bits = in + num_blocks * 2 * sizeof(float);

  // Blocks write disjoint out ranges; shared bit-bytes are read-only.
  IntraOpBlocks(num_blocks, 1, [&](size_t b, size_t, size_t) {
    const size_t begin = b * block_size_;
    const size_t end = std::min(n, begin + block_size_);
    const float pos = scales[2 * b];
    const float neg = scales[2 * b + 1];
    for (size_t i = begin; i < end; ++i) {
      const bool set = (bits[i / 8] >> (i % 8)) & 1u;
      out[i] = set ? pos : -neg;
    }
  });
  return Status::OK();
}

}  // namespace bagua
