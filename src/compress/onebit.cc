#include "compress/onebit.h"

#include <cmath>
#include <cstring>

#include "base/logging.h"
#include "base/strings.h"

namespace bagua {

OneBitCompressor::OneBitCompressor(size_t block_size)
    : block_size_(block_size) {
  BAGUA_CHECK_GT(block_size, 0u);
}

size_t OneBitCompressor::CompressedBytes(size_t n) const {
  const size_t num_blocks = (n + block_size_ - 1) / block_size_;
  return num_blocks * 2 * sizeof(float) + (n + 7) / 8;
}

Status OneBitCompressor::Compress(const float* in, size_t n, Rng* /*rng*/,
                                  std::vector<uint8_t>* out) const {
  const size_t num_blocks = (n + block_size_ - 1) / block_size_;
  out->assign(CompressedBytes(n), 0);
  float* scales = reinterpret_cast<float*>(out->data());
  uint8_t* bits = out->data() + num_blocks * 2 * sizeof(float);

  for (size_t b = 0; b < num_blocks; ++b) {
    const size_t begin = b * block_size_;
    const size_t end = std::min(n, begin + block_size_);
    double pos_sum = 0.0, neg_sum = 0.0;
    size_t pos_cnt = 0, neg_cnt = 0;
    for (size_t i = begin; i < end; ++i) {
      if (in[i] >= 0.0f) {
        pos_sum += in[i];
        ++pos_cnt;
      } else {
        neg_sum -= in[i];
        ++neg_cnt;
      }
    }
    scales[2 * b] =
        pos_cnt > 0 ? static_cast<float>(pos_sum / pos_cnt) : 0.0f;
    scales[2 * b + 1] =
        neg_cnt > 0 ? static_cast<float>(neg_sum / neg_cnt) : 0.0f;
    for (size_t i = begin; i < end; ++i) {
      if (in[i] >= 0.0f) bits[i / 8] |= static_cast<uint8_t>(1u << (i % 8));
    }
  }
  return Status::OK();
}

Status OneBitCompressor::Decompress(const uint8_t* in, size_t bytes, size_t n,
                                    float* out) const {
  if (bytes != CompressedBytes(n)) {
    return Status::InvalidArgument(
        StrFormat("onebit payload %zu bytes, want %zu for n=%zu", bytes,
                  CompressedBytes(n), n));
  }
  const size_t num_blocks = (n + block_size_ - 1) / block_size_;
  const float* scales = reinterpret_cast<const float*>(in);
  const uint8_t* bits = in + num_blocks * 2 * sizeof(float);

  for (size_t b = 0; b < num_blocks; ++b) {
    const size_t begin = b * block_size_;
    const size_t end = std::min(n, begin + block_size_);
    const float pos = scales[2 * b];
    const float neg = scales[2 * b + 1];
    for (size_t i = begin; i < end; ++i) {
      const bool set = (bits[i / 8] >> (i % 8)) & 1u;
      out[i] = set ? pos : -neg;
    }
  }
  return Status::OK();
}

}  // namespace bagua
