#include "compress/qsgd.h"

#include <cmath>
#include <cstring>

#include "base/logging.h"
#include "base/parallel.h"
#include "base/rng.h"
#include "base/strings.h"

namespace bagua {

QsgdCompressor::QsgdCompressor(int bits, size_t block_size)
    : bits_(bits), block_size_(block_size) {
  BAGUA_CHECK(bits == 2 || bits == 4 || bits == 8)
      << "QSGD supports 2/4/8-bit levels, got " << bits;
  BAGUA_CHECK_GT(block_size, 0u);
  levels_ = (1 << (bits - 1)) - 1;
  name_ = StrFormat("qsgd%d", bits);
}

size_t QsgdCompressor::CompressedBytes(size_t n) const {
  const size_t num_blocks = (n + block_size_ - 1) / block_size_;
  const size_t level_bytes =
      (n * static_cast<size_t>(bits_) + 7) / 8;
  return num_blocks * sizeof(float) + level_bytes;
}

Status QsgdCompressor::Compress(const float* in, size_t n, Rng* rng,
                                std::vector<uint8_t>* out) const {
  const size_t num_blocks = (n + block_size_ - 1) / block_size_;
  out->assign(CompressedBytes(n), 0);
  float* scales = reinterpret_cast<float*>(out->data());
  uint8_t* packed = out->data() + num_blocks * sizeof(float);

  const int elems_per_byte = 8 / bits_;
  const int mask = (1 << bits_) - 1;

  // Stochastic rounding draws from a per-block stream derived from ONE
  // value of the caller's rng, so the bit pattern produced is a pure
  // function of (input, rng state at entry, block index) — identical
  // whether blocks run on one thread or eight.
  const bool stochastic = rng != nullptr;
  const uint64_t stream_seed = stochastic ? rng->Next() : 0;

  auto compress_block = [&](size_t b, Rng* brng) {
    const size_t begin = b * block_size_;
    const size_t end = std::min(n, begin + block_size_);
    float scale = 0.0f;
    for (size_t i = begin; i < end; ++i) {
      const float a = std::fabs(in[i]);
      if (a > scale) scale = a;
    }
    scales[b] = scale;
    const float inv = scale > 0.0f ? static_cast<float>(levels_) / scale : 0.0f;
    for (size_t i = begin; i < end; ++i) {
      // Map to [-levels, levels] with stochastic rounding (unbiased).
      const float v = in[i] * inv;
      float lo = std::floor(v);
      const float frac = v - lo;
      float level = lo;
      if (brng != nullptr) {
        if (brng->Uniform() < frac) level = lo + 1.0f;
      } else {
        level = std::nearbyint(v);
      }
      if (level > static_cast<float>(levels_)) level = static_cast<float>(levels_);
      if (level < -static_cast<float>(levels_)) level = -static_cast<float>(levels_);
      const int stored = static_cast<int>(level) + levels_;  // [0, 2*levels]
      const size_t slot = i / elems_per_byte;
      const int shift = static_cast<int>(i % elems_per_byte) * bits_;
      packed[slot] |= static_cast<uint8_t>((stored & mask) << shift);
    }
  };

  if (block_size_ % static_cast<size_t>(elems_per_byte) == 0) {
    // Block boundaries fall on packed-byte boundaries: blocks write
    // disjoint bytes and can run on the intra-op pool.
    IntraOpBlocks(num_blocks, 1, [&](size_t b, size_t, size_t) {
      if (stochastic) {
        Rng brng(MixSeed(stream_seed, b));
        compress_block(b, &brng);
      } else {
        compress_block(b, nullptr);
      }
    });
  } else {
    // Adjacent blocks may share a packed byte — stay sequential (same
    // per-block streams, so the payload is identical either way).
    for (size_t b = 0; b < num_blocks; ++b) {
      if (stochastic) {
        Rng brng(MixSeed(stream_seed, b));
        compress_block(b, &brng);
      } else {
        compress_block(b, nullptr);
      }
    }
  }
  return Status::OK();
}

Status QsgdCompressor::Decompress(const uint8_t* in, size_t bytes, size_t n,
                                  float* out) const {
  if (bytes != CompressedBytes(n)) {
    return Status::InvalidArgument(
        StrFormat("qsgd payload %zu bytes, want %zu for n=%zu", bytes,
                  CompressedBytes(n), n));
  }
  const size_t num_blocks = (n + block_size_ - 1) / block_size_;
  const float* scales = reinterpret_cast<const float*>(in);
  const uint8_t* packed = in + num_blocks * sizeof(float);

  const int elems_per_byte = 8 / bits_;
  const int mask = (1 << bits_) - 1;

  // Blocks write disjoint out ranges; shared packed bytes are read-only.
  IntraOpBlocks(num_blocks, 1, [&](size_t b, size_t, size_t) {
    const size_t begin = b * block_size_;
    const size_t end = std::min(n, begin + block_size_);
    const float step =
        levels_ > 0 ? scales[b] / static_cast<float>(levels_) : 0.0f;
    for (size_t i = begin; i < end; ++i) {
      const size_t slot = i / elems_per_byte;
      const int shift = static_cast<int>(i % elems_per_byte) * bits_;
      const int stored = (packed[slot] >> shift) & mask;
      out[i] = static_cast<float>(stored - levels_) * step;
    }
  });
  return Status::OK();
}

}  // namespace bagua
