#include "compress/factory.h"

#include <cstdlib>

#include "compress/fp16.h"
#include "compress/onebit.h"
#include "compress/qsgd.h"
#include "compress/sketch.h"
#include "compress/topk.h"

namespace bagua {

Result<std::unique_ptr<Compressor>> MakeCompressor(const std::string& spec) {
  if (spec == "identity") {
    return std::unique_ptr<Compressor>(new IdentityCompressor());
  }
  if (spec == "fp16") {
    return std::unique_ptr<Compressor>(new Fp16Compressor());
  }
  if (spec == "onebit") {
    return std::unique_ptr<Compressor>(new OneBitCompressor());
  }
  if (spec == "qsgd8") {
    return std::unique_ptr<Compressor>(new QsgdCompressor(8));
  }
  if (spec == "qsgd4") {
    return std::unique_ptr<Compressor>(new QsgdCompressor(4));
  }
  if (spec == "qsgd2") {
    return std::unique_ptr<Compressor>(new QsgdCompressor(2));
  }
  if (spec.rfind("sketch:", 0) == 0) {
    const double ratio = std::strtod(spec.c_str() + 7, nullptr);
    if (ratio <= 1.0) {
      return Status::InvalidArgument("bad sketch ratio in spec: " + spec);
    }
    return std::unique_ptr<Compressor>(new CountSketchCompressor(ratio));
  }
  if (spec.rfind("topk:", 0) == 0) {
    const double fraction = std::strtod(spec.c_str() + 5, nullptr);
    if (fraction <= 0.0 || fraction > 1.0) {
      return Status::InvalidArgument("bad top-k fraction in spec: " + spec);
    }
    return std::unique_ptr<Compressor>(new TopKCompressor(fraction));
  }
  return Status::NotFound("unknown compressor spec: " + spec);
}

}  // namespace bagua
