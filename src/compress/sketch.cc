#include "compress/sketch.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "base/arena.h"
#include "base/logging.h"
#include "base/strings.h"

namespace bagua {

namespace {
Arena& CompressArena() {
  static Arena* arena = &MemoryRegistry::Global().ArenaFor("compress");
  return *arena;
}
}  // namespace

CountSketchCompressor::CountSketchCompressor(double compression, int rows,
                                             uint64_t seed)
    : compression_(compression), rows_(rows), seed_(seed) {
  BAGUA_CHECK_GT(compression, 1.0);
  BAGUA_CHECK_GE(rows, 1);
  name_ = StrFormat("sketch%.0fx", compression);
}

size_t CountSketchCompressor::WidthFor(size_t n) const {
  const size_t total =
      static_cast<size_t>(std::ceil(static_cast<double>(n) / compression_));
  size_t width = total / static_cast<size_t>(rows_);
  if (width == 0) width = 1;
  return width;
}

size_t CountSketchCompressor::CompressedBytes(size_t n) const {
  return WidthFor(n) * static_cast<size_t>(rows_) * sizeof(float);
}

void CountSketchCompressor::HashOf(size_t i, int row, size_t width,
                                   size_t* bucket, float* sign) const {
  uint64_t h = MixSeed(seed_ + static_cast<uint64_t>(row) * 0x9E37u,
                       static_cast<uint64_t>(i) + 1);
  *bucket = static_cast<size_t>(h % width);
  *sign = (h >> 63) ? 1.0f : -1.0f;
}

Status CountSketchCompressor::Compress(const float* in, size_t n,
                                       Rng* /*rng*/,
                                       std::vector<uint8_t>* out) const {
  const size_t width = WidthFor(n);
  out->assign(CompressedBytes(n), 0);
  float* counters = reinterpret_cast<float*>(out->data());
  for (int r = 0; r < rows_; ++r) {
    float* row = counters + static_cast<size_t>(r) * width;
    for (size_t i = 0; i < n; ++i) {
      size_t bucket;
      float sign;
      HashOf(i, r, width, &bucket, &sign);
      row[bucket] += sign * in[i];
    }
  }
  return Status::OK();
}

Status CountSketchCompressor::Decompress(const uint8_t* in, size_t bytes,
                                         size_t n, float* out) const {
  if (bytes != CompressedBytes(n)) {
    return Status::InvalidArgument(
        StrFormat("sketch payload %zu bytes, want %zu for n=%zu", bytes,
                  CompressedBytes(n), n));
  }
  const size_t width = WidthFor(n);
  const float* counters = reinterpret_cast<const float*>(in);
  // Every slot of `estimates` is assigned per element before the median
  // selection reads it, so recycled (uninitialized) arena storage is safe.
  ArenaScratch est_scratch(&CompressArena(),
                           static_cast<size_t>(rows_) * sizeof(float));
  float* estimates = est_scratch.floats();
  for (size_t i = 0; i < n; ++i) {
    for (int r = 0; r < rows_; ++r) {
      size_t bucket;
      float sign;
      HashOf(i, r, width, &bucket, &sign);
      estimates[static_cast<size_t>(r)] =
          sign * counters[static_cast<size_t>(r) * width + bucket];
    }
    std::nth_element(estimates, estimates + rows_ / 2, estimates + rows_);
    out[i] = estimates[static_cast<size_t>(rows_) / 2];
  }
  return Status::OK();
}

}  // namespace bagua
