#include "compress/compressor.h"

#include <cstring>

#include "base/strings.h"

namespace bagua {

Status IdentityCompressor::Compress(const float* in, size_t n, Rng* /*rng*/,
                                    std::vector<uint8_t>* out) const {
  out->resize(n * 4);
  std::memcpy(out->data(), in, n * 4);
  return Status::OK();
}

Status IdentityCompressor::Decompress(const uint8_t* in, size_t bytes,
                                      size_t n, float* out) const {
  if (bytes != n * 4) {
    return Status::InvalidArgument(
        StrFormat("identity payload %zu bytes, want %zu", bytes, n * 4));
  }
  std::memcpy(out, in, n * 4);
  return Status::OK();
}

Status RoundTrip(const Compressor& codec, const float* in, size_t n, Rng* rng,
                 float* out, size_t* payload_bytes) {
  std::vector<uint8_t> payload;
  RETURN_IF_ERROR(codec.Compress(in, n, rng, &payload));
  if (payload_bytes != nullptr) *payload_bytes = payload.size();
  return codec.Decompress(payload.data(), payload.size(), n, out);
}

}  // namespace bagua
