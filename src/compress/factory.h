#ifndef BAGUA_COMPRESS_FACTORY_H_
#define BAGUA_COMPRESS_FACTORY_H_

#include <memory>
#include <string>

#include "compress/compressor.h"

namespace bagua {

/// \brief Creates a compressor by spec string.
///
/// Recognized specs: "identity", "fp16", "onebit", "qsgd8" / "qsgd4" /
/// "qsgd2", "topk:<fraction>" (e.g. "topk:0.01"), "sketch:<ratio>"
/// (e.g. "sketch:10" for 10x Count-Sketch compression).
Result<std::unique_ptr<Compressor>> MakeCompressor(const std::string& spec);

}  // namespace bagua

#endif  // BAGUA_COMPRESS_FACTORY_H_
