#include "compress/fp16.h"

#include <cstring>

#include "base/arena.h"
#include "base/strings.h"
#include "tensor/dtype.h"

namespace bagua {

namespace {

/// Staging for the vectorized batch converts recycles through the
/// "compress" arena (bench/mem_gate.h holds it to zero steady-state
/// misses alongside the other codecs).
Arena& Fp16Arena() {
  static Arena* arena = &MemoryRegistry::Global().ArenaFor("compress");
  return *arena;
}

}  // namespace

uint16_t FloatToHalf(float f) {
  uint32_t x;
  std::memcpy(&x, &f, 4);
  const uint32_t sign = (x >> 16) & 0x8000u;
  uint32_t exp = (x >> 23) & 0xFFu;
  uint32_t mant = x & 0x7FFFFFu;

  if (exp == 0xFF) {  // inf / NaN
    return static_cast<uint16_t>(sign | 0x7C00u | (mant ? 0x200u : 0u));
  }
  // Re-bias exponent 127 -> 15.
  int e = static_cast<int>(exp) - 127 + 15;
  if (e >= 0x1F) {  // overflow -> inf
    return static_cast<uint16_t>(sign | 0x7C00u);
  }
  if (e <= 0) {  // subnormal or zero
    if (e < -10) return static_cast<uint16_t>(sign);
    mant |= 0x800000u;  // implicit leading 1
    const int shift = 14 - e;
    uint32_t half_mant = mant >> shift;
    // Round to nearest even.
    const uint32_t rem = mant & ((1u << shift) - 1);
    const uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (half_mant & 1u))) ++half_mant;
    return static_cast<uint16_t>(sign | half_mant);
  }
  uint32_t half_mant = mant >> 13;
  const uint32_t rem = mant & 0x1FFFu;
  if (rem > 0x1000u || (rem == 0x1000u && (half_mant & 1u))) {
    ++half_mant;
    if (half_mant == 0x400u) {  // mantissa overflow bumps exponent
      half_mant = 0;
      ++e;
      if (e >= 0x1F) return static_cast<uint16_t>(sign | 0x7C00u);
    }
  }
  return static_cast<uint16_t>(sign | (static_cast<uint32_t>(e) << 10) |
                               half_mant);
}

float HalfToFloat(uint16_t h) {
  const uint32_t sign = (static_cast<uint32_t>(h) & 0x8000u) << 16;
  uint32_t exp = (h >> 10) & 0x1Fu;
  uint32_t mant = h & 0x3FFu;
  uint32_t x;
  if (exp == 0) {
    if (mant == 0) {
      x = sign;  // signed zero
    } else {
      // Subnormal half: normalize.
      int e = -1;
      do {
        ++e;
        mant <<= 1;
      } while ((mant & 0x400u) == 0);
      mant &= 0x3FFu;
      x = sign | ((112u - static_cast<uint32_t>(e)) << 23) | (mant << 13);
    }
  } else if (exp == 0x1F) {
    x = sign | 0x7F800000u | (mant << 13);  // inf / NaN
  } else {
    x = sign | ((exp + 112u) << 23) | (mant << 13);
  }
  float f;
  std::memcpy(&f, &x, 4);
  return f;
}

Status Fp16Compressor::Compress(const float* in, size_t n, Rng* /*rng*/,
                                std::vector<uint8_t>* out) const {
  out->resize(n * 2);
  // Vector storage is operator-new aligned, so the payload can be written
  // as uint16_t directly by the vectorized kernel (bit-identical to the
  // scalar FloatToHalf loop this replaces — dtype_test pins the two).
  FloatToHalfN(in, reinterpret_cast<uint16_t*>(out->data()), n);
  return Status::OK();
}

Status Fp16Compressor::Decompress(const uint8_t* in, size_t bytes, size_t n,
                                  float* out) const {
  if (bytes != n * 2) {
    return Status::InvalidArgument(
        StrFormat("fp16 payload %zu bytes, want %zu", bytes, n * 2));
  }
  // `in` may point at an arbitrary offset inside a framed message, so
  // stage through aligned arena scratch instead of reinterpreting the
  // payload as uint16_t in place.
  ArenaScratch scratch(&Fp16Arena(), n * sizeof(uint16_t));
  std::memcpy(scratch.bytes(), in, bytes);
  HalfToFloatN(reinterpret_cast<const uint16_t*>(scratch.bytes()), out, n);
  return Status::OK();
}

}  // namespace bagua
