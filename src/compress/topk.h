#ifndef BAGUA_COMPRESS_TOPK_H_
#define BAGUA_COMPRESS_TOPK_H_

#include "compress/compressor.h"

namespace bagua {

/// \brief Top-K magnitude sparsifier (Stich et al., 2018; Alistarh et al.,
/// 2018).
///
/// Keeps the ceil(fraction * n) largest-magnitude elements as
/// (uint32 index, float value) pairs; everything else decodes to zero.
/// Strongly biased — intended for use with error compensation, which is why
/// the paper calls C_LP_S's δ/ε state "especially helpful when the
/// compression function is relatively aggressive (e.g., top-K)".
class TopKCompressor : public Compressor {
 public:
  explicit TopKCompressor(double fraction = 0.01);

  const char* name() const override { return name_.c_str(); }
  size_t CompressedBytes(size_t n) const override;
  Status Compress(const float* in, size_t n, Rng* rng,
                  std::vector<uint8_t>* out) const override;
  Status Decompress(const uint8_t* in, size_t bytes, size_t n,
                    float* out) const override;

  double fraction() const { return fraction_; }
  size_t KeptCount(size_t n) const;

 private:
  double fraction_;
  std::string name_;
};

}  // namespace bagua

#endif  // BAGUA_COMPRESS_TOPK_H_
