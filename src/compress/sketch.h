#ifndef BAGUA_COMPRESS_SKETCH_H_
#define BAGUA_COMPRESS_SKETCH_H_

#include "compress/compressor.h"

namespace bagua {

/// \brief Count-Sketch gradient compressor (Ivkin et al., NeurIPS 2019 —
/// the "sketching" relaxation of §2.3).
///
/// Encodes an n-vector into `rows` independent hash sketches of `width`
/// counters each: counter[r][h_r(i)] += s_r(i) * x_i with sign hashes s_r.
/// Decoding estimates x_i as the median of s_r(i) * counter[r][h_r(i)].
/// Unbiased per row; the median over rows suppresses heavy-hitter
/// collisions. Compression ratio = n / (rows * width), chosen at
/// construction.
class CountSketchCompressor : public Compressor {
 public:
  /// \param compression target ratio (payload ~= n*4 / compression bytes).
  /// \param rows number of independent sketch rows (odd; median-friendly).
  /// \param seed hash seed; all workers must agree for the sketches to be
  ///        mergeable (summing sketches == sketching the sum).
  explicit CountSketchCompressor(double compression = 10.0, int rows = 3,
                                 uint64_t seed = 0xC0FFEE);

  const char* name() const override { return name_.c_str(); }
  size_t CompressedBytes(size_t n) const override;
  Status Compress(const float* in, size_t n, Rng* rng,
                  std::vector<uint8_t>* out) const override;
  Status Decompress(const uint8_t* in, size_t bytes, size_t n,
                    float* out) const override;

  int rows() const { return rows_; }
  size_t WidthFor(size_t n) const;

 private:
  /// Hash of (element index, row) -> (bucket, sign).
  void HashOf(size_t i, int row, size_t width, size_t* bucket,
              float* sign) const;

  double compression_;
  int rows_;
  uint64_t seed_;
  std::string name_;
};

}  // namespace bagua

#endif  // BAGUA_COMPRESS_SKETCH_H_
