#ifndef BAGUA_COMPRESS_ONEBIT_H_
#define BAGUA_COMPRESS_ONEBIT_H_

#include "compress/compressor.h"

namespace bagua {

/// \brief 1-bit sign compressor used by 1-bit Adam (Tang et al., 2021).
///
/// Elements are processed in blocks. Each block stores two float scales —
/// the mean magnitude of its positive and of its negative elements — plus
/// one sign bit per element. decode(x_i) = pos_scale if sign set, else
/// -neg_scale. The codec is biased (signSGD-style), which is why the paper
/// pairs it with error compensation (the δ/ε state of C_LP_S).
class OneBitCompressor : public Compressor {
 public:
  explicit OneBitCompressor(size_t block_size = 2048);

  const char* name() const override { return "onebit"; }
  size_t CompressedBytes(size_t n) const override;
  Status Compress(const float* in, size_t n, Rng* rng,
                  std::vector<uint8_t>* out) const override;
  Status Decompress(const uint8_t* in, size_t bytes, size_t n,
                    float* out) const override;

  size_t block_size() const { return block_size_; }

 private:
  size_t block_size_;
};

}  // namespace bagua

#endif  // BAGUA_COMPRESS_ONEBIT_H_
