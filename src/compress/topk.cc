#include "compress/topk.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>

#include "base/arena.h"
#include "base/logging.h"
#include "base/parallel.h"
#include "base/strings.h"

namespace bagua {

namespace {
/// Selection scratch recycles through the "compress" subsystem arena so
/// steady-state compression allocates nothing and its bytes are gauged.
Arena& CompressArena() {
  static Arena* arena = &MemoryRegistry::Global().ArenaFor("compress");
  return *arena;
}
}  // namespace

TopKCompressor::TopKCompressor(double fraction) : fraction_(fraction) {
  BAGUA_CHECK(fraction > 0.0 && fraction <= 1.0)
      << "top-k fraction must be in (0, 1], got " << fraction;
  name_ = StrFormat("topk%.3f", fraction);
}

size_t TopKCompressor::KeptCount(size_t n) const {
  if (n == 0) return 0;
  size_t k = static_cast<size_t>(std::ceil(fraction_ * static_cast<double>(n)));
  if (k == 0) k = 1;
  if (k > n) k = n;
  return k;
}

size_t TopKCompressor::CompressedBytes(size_t n) const {
  // (index, value) pairs.
  return KeptCount(n) * (sizeof(uint32_t) + sizeof(float));
}

Status TopKCompressor::Compress(const float* in, size_t n, Rng* /*rng*/,
                                std::vector<uint8_t>* out) const {
  if (n > UINT32_MAX) {
    return Status::InvalidArgument("top-k supports at most 2^32 elements");
  }
  const size_t k = KeptCount(n);
  // Magnitude keys are precomputed in parallel (selection then compares
  // plain floats instead of re-evaluating fabs O(n log n) times). The
  // selection itself is sequential with a deterministic tie-break, so the
  // kept set is identical at any intra-op thread count.
  ArenaScratch mag_scratch(&CompressArena(), n * sizeof(float));
  float* mag = mag_scratch.floats();
  IntraOpFor(n, kElementwiseGrain, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) mag[i] = std::fabs(in[i]);
  });
  ArenaScratch idx_scratch(&CompressArena(), n * sizeof(uint32_t));
  uint32_t* idx = idx_scratch.u32();
  std::iota(idx, idx + n, 0u);
  std::nth_element(idx, idx + (k > 0 ? k - 1 : 0), idx + n,
                   [mag](uint32_t a, uint32_t b) {
                     const float fa = mag[a], fb = mag[b];
                     if (fa != fb) return fa > fb;
                     return a < b;  // deterministic tie-break
                   });
  std::sort(idx, idx + k);

  out->resize(CompressedBytes(n));
  uint32_t* indices = reinterpret_cast<uint32_t*>(out->data());
  float* values = reinterpret_cast<float*>(out->data() + k * sizeof(uint32_t));
  for (size_t i = 0; i < k; ++i) {
    indices[i] = idx[i];
    values[i] = in[idx[i]];
  }
  return Status::OK();
}

Status TopKCompressor::Decompress(const uint8_t* in, size_t bytes, size_t n,
                                  float* out) const {
  if (bytes != CompressedBytes(n)) {
    return Status::InvalidArgument(
        StrFormat("topk payload %zu bytes, want %zu for n=%zu", bytes,
                  CompressedBytes(n), n));
  }
  const size_t k = KeptCount(n);
  const uint32_t* indices = reinterpret_cast<const uint32_t*>(in);
  const float* values =
      reinterpret_cast<const float*>(in + k * sizeof(uint32_t));
  std::memset(out, 0, n * sizeof(float));
  for (size_t i = 0; i < k; ++i) {
    if (indices[i] >= n) {
      return Status::InvalidArgument(
          StrFormat("topk index %u out of range (n=%zu)", indices[i], n));
    }
    out[indices[i]] = values[i];
  }
  return Status::OK();
}

}  // namespace bagua
