#ifndef BAGUA_COMPRESS_COMPRESSOR_H_
#define BAGUA_COMPRESS_COMPRESSOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/rng.h"
#include "base/status.h"

namespace bagua {

/// \brief The lossy compression function Q of §3.2.
///
/// A Compressor encodes a flat float span into a byte payload and decodes it
/// back. Implementations must be:
///   - size-deterministic: CompressedBytes(n) is exact, so the network cost
///     model can price a transfer without executing the codec;
///   - self-contained: payloads carry their own scales; and
///   - deterministic given the Rng (stochastic rounding draws from it).
class Compressor {
 public:
  virtual ~Compressor() = default;

  virtual const char* name() const = 0;

  /// Exact payload size for an n-element input.
  virtual size_t CompressedBytes(size_t n) const = 0;

  /// Encodes `in[0, n)` into `out` (resized to CompressedBytes(n)).
  /// `rng` may be null for deterministic codecs.
  virtual Status Compress(const float* in, size_t n, Rng* rng,
                          std::vector<uint8_t>* out) const = 0;

  /// Decodes a payload produced by Compress back into `out[0, n)`.
  virtual Status Decompress(const uint8_t* in, size_t bytes, size_t n,
                            float* out) const = 0;

  /// Average compressed bytes per element (for reporting).
  double BytesPerElement() const {
    return static_cast<double>(CompressedBytes(1 << 16)) / (1 << 16);
  }
};

/// \brief Identity codec: full-precision "compression" (4 bytes/element).
/// Used so full- and low-precision code paths share one implementation.
class IdentityCompressor : public Compressor {
 public:
  const char* name() const override { return "identity"; }
  size_t CompressedBytes(size_t n) const override { return n * 4; }
  Status Compress(const float* in, size_t n, Rng* rng,
                  std::vector<uint8_t>* out) const override;
  Status Decompress(const uint8_t* in, size_t bytes, size_t n,
                    float* out) const override;
};

/// \brief Convenience: round-trips `in` through the codec into `out`
/// (decode(encode(in))), returning the payload size via *payload_bytes.
Status RoundTrip(const Compressor& codec, const float* in, size_t n, Rng* rng,
                 float* out, size_t* payload_bytes = nullptr);

}  // namespace bagua

#endif  // BAGUA_COMPRESS_COMPRESSOR_H_
