#ifndef BAGUA_COMPRESS_FP16_H_
#define BAGUA_COMPRESS_FP16_H_

#include "compress/compressor.h"

namespace bagua {

/// \brief Converts a float to IEEE 754 binary16 (round-to-nearest-even).
uint16_t FloatToHalf(float f);

/// \brief Converts an IEEE 754 binary16 back to float.
float HalfToFloat(uint16_t h);

/// \brief fp16 codec — the "Horovod 16bits" gradient compression the paper
/// compares against (NCCL fp16 allreduce). 2 bytes per element, lossy but
/// deterministic.
class Fp16Compressor : public Compressor {
 public:
  const char* name() const override { return "fp16"; }
  size_t CompressedBytes(size_t n) const override { return n * 2; }
  Status Compress(const float* in, size_t n, Rng* rng,
                  std::vector<uint8_t>* out) const override;
  Status Decompress(const uint8_t* in, size_t bytes, size_t n,
                    float* out) const override;
};

}  // namespace bagua

#endif  // BAGUA_COMPRESS_FP16_H_
