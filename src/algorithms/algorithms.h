#ifndef BAGUA_ALGORITHMS_ALGORITHMS_H_
#define BAGUA_ALGORITHMS_ALGORITHMS_H_

#include <memory>
#include <string>
#include <vector>

#include "comm/primitives.h"
#include "compress/fp16.h"
#include "compress/onebit.h"
#include "compress/qsgd.h"
#include "core/algorithm.h"
#include "ps/server.h"

namespace bagua {

/// The six training algorithms the paper evaluates (§4.1, "BAGUA
/// Algorithms") plus two extensions (fp16 allreduce and LocalSGD,
/// the §3.2 discussion). Each is a thin composition over the four
/// communication primitives — which is the point of the abstraction.

/// \brief "Allreduce": standard synchronous DP-SG via C_FP_S.
/// Gradients are summed across workers, averaged, then applied.
class AllreduceAlgorithm : public Algorithm {
 public:
  AllreduceAlgorithm() = default;
  const std::string& name() const override { return name_; }
  AlgorithmTraits traits() const override { return {true, true, true, false}; }
  Status OnBucketReady(BaguaContext* ctx, Bucket* bucket) override;
  double CommCost(size_t numel, const ClusterTopology& topo,
                  const NetworkConfig& net, bool hierarchical) const override;
  double WireBytes(size_t numel, const ClusterTopology& topo,
                   bool hierarchical) const override;

 private:
  std::string name_ = "allreduce";
};

/// \brief "QSGD": 8-bit stochastically quantized gradients via C_LP_S,
/// no error compensation [4].
class QsgdAlgorithm : public Algorithm {
 public:
  explicit QsgdAlgorithm(int bits = 8);
  const std::string& name() const override { return name_; }
  AlgorithmTraits traits() const override {
    return {true, false, true, false};
  }
  Status OnBucketReady(BaguaContext* ctx, Bucket* bucket) override;
  double CommCost(size_t numel, const ClusterTopology& topo,
                  const NetworkConfig& net, bool hierarchical) const override;
  double CodecCost(size_t numel, const DeviceConfig& dev) const override;
  double WireBytes(size_t numel, const ClusterTopology& topo,
                   bool hierarchical) const override;

 private:
  std::string name_;
  QsgdCompressor codec_;
};

/// \brief "1-bit Adam" [79]: full-precision Adam warmup, then 1-bit
/// compressed communication with error compensation and a frozen Adam
/// variance. ctx->optimizer must be an AdamOptimizer.
class OneBitAdamAlgorithm : public Algorithm {
 public:
  explicit OneBitAdamAlgorithm(uint64_t warmup_steps = 16,
                               size_t block_size = 128);
  const std::string& name() const override { return name_; }
  AlgorithmTraits traits() const override {
    return {true, false, true, false};
  }
  Status Init(BaguaContext* ctx, std::vector<Bucket>* buckets) override;
  Status OnBucketReady(BaguaContext* ctx, Bucket* bucket) override;
  double CommCost(size_t numel, const ClusterTopology& topo,
                  const NetworkConfig& net, bool hierarchical) const override;
  double CodecCost(size_t numel, const DeviceConfig& dev) const override;
  double WireBytes(size_t numel, const ClusterTopology& topo,
                   bool hierarchical) const override;

  uint64_t warmup_steps() const { return warmup_steps_; }

 private:
  /// Copies Adam's moments at the warmup→compression switch and
  /// precomputes the frozen denominator sqrt(v̂) + ε.
  Status FreezeFromAdam(AdamOptimizer* adam, const Bucket& bucket);

  std::string name_ = "1bit-adam";
  uint64_t warmup_steps_;
  OneBitCompressor codec_;
  std::vector<ClpsState> states_;  // per bucket
  /// Compression-stage state, per bucket: synchronized momentum and the
  /// frozen denominator.
  std::vector<std::vector<float>> momentum_;
  std::vector<std::vector<float>> denom_;
  bool frozen_ = false;
};

/// \brief "Decen-32bits" / "Decen-8bits": decentralized SGD [15, 17].
/// The model is updated locally first, then replicas are averaged with the
/// step's peers — D_FP_S (full precision, random probing by default) or
/// D_LP_S (8-bit quantized, ring), matching Fig. 3's decentralized
/// low-precision pipeline where "model update happens before communication".
class DecentralizedAlgorithm : public Algorithm {
 public:
  DecentralizedAlgorithm(bool low_precision, PeerSelection peers);
  const std::string& name() const override { return name_; }
  AlgorithmTraits traits() const override {
    return {true, !low_precision_, false, true};
  }
  Status OnBucketReady(BaguaContext* ctx, Bucket* bucket) override;
  double CommCost(size_t numel, const ClusterTopology& topo,
                  const NetworkConfig& net, bool hierarchical) const override;
  double CodecCost(size_t numel, const DeviceConfig& dev) const override;
  double WireBytes(size_t numel, const ClusterTopology& topo,
                   bool hierarchical) const override;
  /// Decentralized workers only rendezvous with their step peers (plus the
  /// node group when hierarchical — still far fewer than the world).
  int BarrierGroup(int world) const override {
    const int peers = peers_ == PeerSelection::kRing ? 3 : 2;
    return std::min(world, peers);
  }

 private:
  std::string name_;
  bool low_precision_;
  PeerSelection peers_;
  QsgdCompressor codec_;
};

/// \brief "Async": asynchronous centralized DP-SG against a sharded
/// parameter server. Workers never wait for each other: each bucket's
/// gradient is pushed (applied server-side immediately) and fresh weights
/// are pulled back. §3.2's discussion — asynchrony comes from concurrent
/// progress, built on synchronous push/pull against shared state.
class AsyncPsAlgorithm : public Algorithm {
 public:
  /// All workers must pass the same `server`. `lr` is the server-side
  /// learning rate (the local optimizer is bypassed). With a `codec` the
  /// pushed gradients are lossily compressed first — the asynchronous
  /// low-precision centralized cell of Table 1 ("async-lp"); the codec
  /// must outlive the algorithm.
  AsyncPsAlgorithm(std::shared_ptr<ShardedParameterServer> server, double lr,
                   const Compressor* codec = nullptr);
  const std::string& name() const override { return name_; }
  AlgorithmTraits traits() const override {
    return {false, codec_ == nullptr, true, false};
  }
  Status Init(BaguaContext* ctx, std::vector<Bucket>* buckets) override;
  Status OnBucketReady(BaguaContext* ctx, Bucket* bucket) override;
  double CommCost(size_t numel, const ClusterTopology& topo,
                  const NetworkConfig& net, bool hierarchical) const override;
  double WireBytes(size_t numel, const ClusterTopology& topo,
                   bool hierarchical) const override;

 private:
  std::string name_ = "async";
  std::shared_ptr<ShardedParameterServer> server_;
  double lr_;
  const Compressor* codec_ = nullptr;
  // Per-bucket shard ranges within the server's flat space.
  std::vector<size_t> bucket_offsets_;
  size_t total_numel_ = 0;
};

/// \brief Asynchronous decentralized SGD — the "async-decen" cell of
/// Table 1 (asynchronous, full precision, decentralized).
///
/// Each step a worker updates locally, fires its model at one
/// pseudo-random peer without waiting, then averages itself with whatever
/// peer models have already arrived (non-blocking drain). No barrier of
/// any size exists: a straggler's models simply arrive stale, the gossip
/// analogue of asynchronous PS training (cf. AD-PSGD, Lian et al. [16]).
class AsyncDecenAlgorithm : public Algorithm {
 public:
  AsyncDecenAlgorithm() = default;
  const std::string& name() const override { return name_; }
  AlgorithmTraits traits() const override {
    return {false, true, false, true};
  }
  Status OnBucketReady(BaguaContext* ctx, Bucket* bucket) override;
  Status Finish(BaguaContext* ctx) override;
  double CommCost(size_t numel, const ClusterTopology& topo,
                  const NetworkConfig& net, bool hierarchical) const override;
  double WireBytes(size_t numel, const ClusterTopology& topo,
                   bool hierarchical) const override;
  int BarrierGroup(int /*world*/) const override { return 1; }

 private:
  std::string name_ = "async-decen";
  /// Messages outstanding to each peer are bounded by draining before
  /// sending; the fixed tag space for bucket b is kGossipSpaceBase + b
  /// (the audited gossip namespace of transport/transport.h).
};

/// \brief "LocalSGD" [20]: τ local update steps between model averagings —
/// the communication-delay relaxation. Extension beyond the paper's six
/// evaluated algorithms, implemented per its §3.2 discussion.
class LocalSgdAlgorithm : public Algorithm {
 public:
  explicit LocalSgdAlgorithm(uint64_t period = 4);
  const std::string& name() const override { return name_; }
  AlgorithmTraits traits() const override { return {true, true, true, true}; }
  Status OnBucketReady(BaguaContext* ctx, Bucket* bucket) override;
  double CommCost(size_t numel, const ClusterTopology& topo,
                  const NetworkConfig& net, bool hierarchical) const override;
  double WireBytes(size_t numel, const ClusterTopology& topo,
                   bool hierarchical) const override;

  uint64_t period() const { return period_; }
  double BarrierFreq() const override {
    return 1.0 / static_cast<double>(period_);
  }

 private:
  std::string name_;
  uint64_t period_;
};

/// \brief fp16-compressed allreduce — BAGUA's twin of "Horovod 16bits"
/// (NCCL fp16 gradient compression), via C_LP_S with the fp16 codec.
class Fp16AllreduceAlgorithm : public Algorithm {
 public:
  Fp16AllreduceAlgorithm() = default;
  const std::string& name() const override { return name_; }
  AlgorithmTraits traits() const override {
    return {true, false, true, false};
  }
  Status OnBucketReady(BaguaContext* ctx, Bucket* bucket) override;
  double CommCost(size_t numel, const ClusterTopology& topo,
                  const NetworkConfig& net, bool hierarchical) const override;
  double CodecCost(size_t numel, const DeviceConfig& dev) const override;
  double WireBytes(size_t numel, const ClusterTopology& topo,
                   bool hierarchical) const override;

 private:
  std::string name_ = "allreduce-fp16";
  Fp16Compressor codec_;
};

/// \brief bf16-wire allreduce: the dense gradient sum travels as 2-byte
/// bf16 payloads with fp32 accumulation (collectives/wire_format.h) — the
/// wire-dtype relaxation, as opposed to allreduce-fp16's *compressed*
/// ScatterReduce (C_LP_S with a codec). Halves every phase's wire bytes
/// while the canonical requantization chain keeps results bitwise
/// identical across flat/hierarchical/tree execution.
class Bf16AllreduceAlgorithm : public Algorithm {
 public:
  Bf16AllreduceAlgorithm() = default;
  const std::string& name() const override { return name_; }
  AlgorithmTraits traits() const override {
    return {true, false, true, false};
  }
  Status OnBucketReady(BaguaContext* ctx, Bucket* bucket) override;
  double CommCost(size_t numel, const ClusterTopology& topo,
                  const NetworkConfig& net, bool hierarchical) const override;
  double CodecCost(size_t numel, const DeviceConfig& dev) const override;
  double WireBytes(size_t numel, const ClusterTopology& topo,
                   bool hierarchical) const override;

 private:
  std::string name_ = "allreduce-bf16";
};

}  // namespace bagua

#endif  // BAGUA_ALGORITHMS_ALGORITHMS_H_
