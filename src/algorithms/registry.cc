#include "algorithms/registry.h"

#include <cstdlib>

#include "algorithms/algorithms.h"

namespace bagua {

Result<std::unique_ptr<Algorithm>> MakeAlgorithm(const std::string& name) {
  if (name == "allreduce") {
    return std::unique_ptr<Algorithm>(new AllreduceAlgorithm());
  }
  if (name == "qsgd8") {
    return std::unique_ptr<Algorithm>(new QsgdAlgorithm(8));
  }
  if (name == "qsgd4") {
    return std::unique_ptr<Algorithm>(new QsgdAlgorithm(4));
  }
  if (name == "1bit-adam") {
    return std::unique_ptr<Algorithm>(new OneBitAdamAlgorithm());
  }
  if (name == "decen-32bits") {
    return std::unique_ptr<Algorithm>(
        new DecentralizedAlgorithm(false, PeerSelection::kRandom));
  }
  if (name == "decen-8bits") {
    return std::unique_ptr<Algorithm>(
        new DecentralizedAlgorithm(true, PeerSelection::kRing));
  }
  if (name == "allreduce-fp16") {
    return std::unique_ptr<Algorithm>(new Fp16AllreduceAlgorithm());
  }
  if (name == "allreduce-bf16") {
    return std::unique_ptr<Algorithm>(new Bf16AllreduceAlgorithm());
  }
  if (name == "async-decen") {
    return std::unique_ptr<Algorithm>(new AsyncDecenAlgorithm());
  }
  if (name.rfind("local-sgd-", 0) == 0) {
    const long period = std::strtol(name.c_str() + 10, nullptr, 10);
    if (period <= 0) {
      return Status::InvalidArgument("bad LocalSGD period in: " + name);
    }
    return std::unique_ptr<Algorithm>(
        new LocalSgdAlgorithm(static_cast<uint64_t>(period)));
  }
  return Status::NotFound("unknown algorithm: " + name);
}

std::vector<std::string> RegisteredAlgorithms() {
  return {"allreduce",      "qsgd8",        "qsgd4",
          "1bit-adam",      "decen-32bits", "decen-8bits",
          "allreduce-fp16", "allreduce-bf16", "local-sgd-4",
          "async-decen"};
}

std::vector<CoverageRow> SupportMatrix() {
  // Columns follow Table 1. PyTorch-DDP and Horovod support centralized
  // synchronous training (full precision, and low precision via NCCL fp16);
  // BytePS adds asynchronous centralized full precision; only BAGUA covers
  // the decentralized and the remaining low-precision cells.
  return {
      // sync, full, centralized
      {{true, true, true, false}, true, true, true, true, "allreduce"},
      // sync, full, decentralized
      {{true, true, false, true}, false, false, false, true, "decen-32bits"},
      // sync, low, centralized
      {{true, false, true, false}, true, true, true, true, "qsgd8/1bit-adam"},
      // sync, low, decentralized
      {{true, false, false, true}, false, false, false, true, "decen-8bits"},
      // async, full, centralized
      {{false, true, true, false}, false, false, true, true, "async"},
      // async, full, decentralized
      {{false, true, false, false}, false, false, false, true, "async-decen"},
      // async, low, centralized
      {{false, false, true, false}, false, false, false, true, "async-lp"},
      // async, low, decentralized — open cell in Table 1.
      {{false, false, false, false}, false, false, false, false, "-"},
  };
}

}  // namespace bagua
