#ifndef BAGUA_ALGORITHMS_REGISTRY_H_
#define BAGUA_ALGORITHMS_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/algorithm.h"

namespace bagua {

/// \brief One row of the paper's Table 1: a (sync, precision,
/// centralization) cell and which systems support it.
struct CoverageRow {
  AlgorithmTraits traits;
  bool pytorch_ddp;
  bool horovod;
  bool byteps;
  bool bagua;
  const char* example;  ///< representative algorithm
};

/// \brief Instantiates a BAGUA algorithm by name: "allreduce", "qsgd8",
/// "qsgd4", "1bit-adam", "decen-32bits", "decen-8bits", "local-sgd-<τ>",
/// "allreduce-fp16". ("async" needs a shared parameter server — construct
/// AsyncPsAlgorithm directly.)
Result<std::unique_ptr<Algorithm>> MakeAlgorithm(const std::string& name);

/// \brief Names accepted by MakeAlgorithm (for CLIs and sweeps).
std::vector<std::string> RegisteredAlgorithms();

/// \brief The support matrix of Table 1, derived from the algorithm
/// implementations present in this library and each baseline's documented
/// capabilities.
std::vector<CoverageRow> SupportMatrix();

}  // namespace bagua

#endif  // BAGUA_ALGORITHMS_REGISTRY_H_
