#include "algorithms/algorithms.h"

#include <cmath>
#include <cstring>

#include "base/arena.h"
#include "base/logging.h"
#include "base/strings.h"
#include "collectives/hierarchy.h"
#include "sim/collective_cost.h"
#include "tensor/ops.h"

namespace bagua {

namespace {

/// Per-bucket algorithm scratch (momenta staging, PS push/pull staging,
/// gossip accumulators) recycles through the "algo" arena: these run once
/// per bucket per step, squarely inside the whole-step zero-allocation
/// discipline bench/mem_gate.h enforces.
Arena& AlgoArena() {
  static Arena* arena = &MemoryRegistry::Global().ArenaFor("algo");
  return *arena;
}

/// Average-and-apply: scales the summed gradient by 1/world and runs the
/// optimizer over the bucket's flat span.
Status ApplyAveragedGrad(BaguaContext* ctx, Bucket* bucket) {
  Scale(bucket->grad_data(), 1.0f / static_cast<float>(ctx->world_size()),
        bucket->numel);
  return ctx->optimizer->Step(bucket->index, bucket->value_data(),
                              bucket->grad_data(), bucket->numel);
}

}  // namespace

// ---------------------------------------------------------------- Allreduce

Status AllreduceAlgorithm::OnBucketReady(BaguaContext* ctx, Bucket* bucket) {
  RETURN_IF_ERROR(CFpS(&ctx->comm, bucket->grad_data(), bucket->numel));
  return ApplyAveragedGrad(ctx, bucket);
}

double AllreduceAlgorithm::CommCost(size_t numel, const ClusterTopology& topo,
                                    const NetworkConfig& net,
                                    bool hierarchical) const {
  return EstimateCFpSCost(topo, net, numel * 4.0, hierarchical);
}

double AllreduceAlgorithm::WireBytes(size_t numel, const ClusterTopology& topo,
                                     bool hierarchical) const {
  const double bytes = numel * 4.0;
  const double m = static_cast<double>(topo.world_size());
  if (hierarchical && topo.devices_per_node > 1) {
    // Per-rank average of the algorithm CFpS actually dispatches to
    // (collectives/hierarchy.h).
    switch (ChooseAllreduceAlgo(topo, static_cast<size_t>(bytes))) {
      case AllreduceAlgo::kTree: {
        // Gather slots up the tree plus (m-1) full copies broadcast down.
        const double slots = static_cast<double>(
            TreeGatherTotalSlots(static_cast<size_t>(m)) +
            static_cast<size_t>(m) - 1);
        return slots * bytes / m;
      }
      case AllreduceAlgo::kHierarchical: {
        const double d = static_cast<double>(topo.devices_per_node);
        const double nodes = static_cast<double>(topo.num_nodes);
        // Intra reduce + broadcast (2(d-1) copies per node) plus the
        // leaders' ring share, averaged over the d ranks of a node.
        return (2.0 * (d - 1.0) + 2.0 * (nodes - 1.0) / nodes) * bytes / d;
      }
      case AllreduceAlgo::kFlatRing:
        return 2.0 * bytes;
    }
  }
  return 2.0 * bytes;
}

// --------------------------------------------------------------------- QSGD

QsgdAlgorithm::QsgdAlgorithm(int bits)
    : name_(StrFormat("qsgd%d", bits)), codec_(bits) {}

Status QsgdAlgorithm::OnBucketReady(BaguaContext* ctx, Bucket* bucket) {
  RETURN_IF_ERROR(
      CLpS(&ctx->comm, codec_, bucket->grad_data(), bucket->numel, nullptr));
  return ApplyAveragedGrad(ctx, bucket);
}

double QsgdAlgorithm::CommCost(size_t numel, const ClusterTopology& topo,
                               const NetworkConfig& net,
                               bool hierarchical) const {
  return EstimateCLpSCost(topo, net, codec_, numel, hierarchical);
}

double QsgdAlgorithm::CodecCost(size_t numel, const DeviceConfig& dev) const {
  // Two encodes + ~two decodes, each an elementwise pass over the span.
  return 4.0 * dev.MemPassTime(numel * 4.0);
}

double QsgdAlgorithm::WireBytes(size_t numel, const ClusterTopology& topo,
                                bool hierarchical) const {
  const double wire = static_cast<double>(codec_.CompressedBytes(numel));
  if (hierarchical) {
    return 2.0 * numel * 4.0 + 2.0 * wire / topo.devices_per_node;
  }
  return 2.0 * wire;
}

// ---------------------------------------------------------------- 1bit-Adam

OneBitAdamAlgorithm::OneBitAdamAlgorithm(uint64_t warmup_steps,
                                         size_t block_size)
    : warmup_steps_(warmup_steps), codec_(block_size) {}

Status OneBitAdamAlgorithm::Init(BaguaContext* ctx,
                                 std::vector<Bucket>* buckets) {
  states_.clear();
  momentum_.clear();
  denom_.clear();
  frozen_ = false;
  momentum_.resize(buckets->size());
  denom_.resize(buckets->size());
  for (Bucket& bucket : *buckets) {
    ASSIGN_OR_RETURN(ClpsState state, InitClpsState(ctx->comm, bucket.numel));
    states_.push_back(std::move(state));
  }
  return Status::OK();
}

Status OneBitAdamAlgorithm::FreezeFromAdam(AdamOptimizer* adam,
                                           const Bucket& bucket) {
  const size_t slot = bucket.index;
  const auto& m = adam->momentum(slot);
  const auto& v = adam->variance(slot);
  if (m.size() != bucket.numel || v.size() != bucket.numel) {
    return Status::FailedPrecondition(
        "1-bit Adam: warmup must run at least one step before compression");
  }
  momentum_[slot] = m;
  denom_[slot].resize(bucket.numel);
  // Freeze sqrt(v̂) + ε with the bias correction of the freeze step, as the
  // 1-bit Adam paper prescribes.
  const double bias2 =
      1.0 - std::pow(adam->beta2(),
                     static_cast<double>(adam->step_count(slot)));
  for (size_t i = 0; i < bucket.numel; ++i) {
    denom_[slot][i] = static_cast<float>(
        std::sqrt(static_cast<double>(v[i]) / bias2) + adam->eps());
  }
  return Status::OK();
}

Status OneBitAdamAlgorithm::OnBucketReady(BaguaContext* ctx, Bucket* bucket) {
  auto* adam = dynamic_cast<AdamOptimizer*>(ctx->optimizer);
  if (adam == nullptr) {
    return Status::FailedPrecondition("1-bit Adam requires AdamOptimizer");
  }
  if (ctx->step < warmup_steps_) {
    // Warmup stage: plain full-precision Adam (builds the variance).
    RETURN_IF_ERROR(CFpS(&ctx->comm, bucket->grad_data(), bucket->numel));
    return ApplyAveragedGrad(ctx, bucket);
  }
  // Compression stage (Tang et al. [79]): the *momentum* is communicated in
  // 1 bit with error compensation; Adam's variance stays frozen at its
  // warmup value.
  if (!frozen_ || momentum_[bucket->index].size() != bucket->numel) {
    RETURN_IF_ERROR(FreezeFromAdam(adam, *bucket));
    if (bucket->index + 1 == states_.size()) frozen_ = true;
    adam->FreezeVariance();
  }
  const size_t n = bucket->numel;
  std::vector<float>& m = momentum_[bucket->index];
  const float b1 = static_cast<float>(adam->beta1());
  const float* g = bucket->grad_data();
  // m ← β1·m + (1−β1)·(g_local / world): workers update the shared momentum
  // with their local gradient, then synchronize the compressed momenta.
  ArenaScratch local_m_scratch(&AlgoArena(), n * sizeof(float));
  float* local_m = local_m_scratch.floats();
  for (size_t i = 0; i < n; ++i) {
    local_m[i] = b1 * m[i] + (1.0f - b1) * g[i];
  }
  RETURN_IF_ERROR(CLpS(&ctx->comm, codec_, local_m, n,
                       &states_[bucket->index]));
  const float inv_world = 1.0f / static_cast<float>(ctx->world_size());
  const float lr = static_cast<float>(adam->lr());
  float* w = bucket->value_data();
  const std::vector<float>& denom = denom_[bucket->index];
  for (size_t i = 0; i < n; ++i) {
    m[i] = local_m[i] * inv_world;  // synchronized averaged momentum
    w[i] -= lr * m[i] / denom[i];
  }
  return Status::OK();
}

double OneBitAdamAlgorithm::CommCost(size_t numel, const ClusterTopology& topo,
                                     const NetworkConfig& net,
                                     bool hierarchical) const {
  // Steady-state (post-warmup) cost: warmup is a vanishing fraction of an
  // epoch at production scale.
  return EstimateCLpSCost(topo, net, codec_, numel, hierarchical);
}

double OneBitAdamAlgorithm::CodecCost(size_t numel,
                                      const DeviceConfig& dev) const {
  // Encode/decode plus δ and ε error-state passes.
  return 6.0 * dev.MemPassTime(numel * 4.0);
}

double OneBitAdamAlgorithm::WireBytes(size_t numel,
                                      const ClusterTopology& topo,
                                      bool hierarchical) const {
  const double wire = static_cast<double>(codec_.CompressedBytes(numel));
  if (hierarchical) {
    return 2.0 * numel * 4.0 + 2.0 * wire / topo.devices_per_node;
  }
  return 2.0 * wire;
}

// ------------------------------------------------------------- Decentralized

DecentralizedAlgorithm::DecentralizedAlgorithm(bool low_precision,
                                               PeerSelection peers)
    : name_(low_precision ? "decen-8bits" : "decen-32bits"),
      low_precision_(low_precision),
      peers_(peers),
      codec_(8) {}

Status DecentralizedAlgorithm::OnBucketReady(BaguaContext* ctx,
                                             Bucket* bucket) {
  // Decentralized pipeline (Fig. 3): local model update first, then
  // exchange-and-average the *model* with this step's peers.
  RETURN_IF_ERROR(ctx->optimizer->Step(bucket->index, bucket->value_data(),
                                       bucket->grad_data(), bucket->numel));
  if (low_precision_) {
    return DLpS(&ctx->comm, codec_, peers_, bucket->value_data(),
                bucket->numel);
  }
  return DFpS(&ctx->comm, peers_, bucket->value_data(), bucket->numel);
}

double DecentralizedAlgorithm::CommCost(size_t numel,
                                        const ClusterTopology& topo,
                                        const NetworkConfig& net,
                                        bool hierarchical) const {
  const double full = numel * 4.0;
  const double wire =
      low_precision_ ? static_cast<double>(codec_.CompressedBytes(numel))
                     : full;
  return EstimateDecenCost(topo, net, peers_, full, wire, hierarchical);
}

double DecentralizedAlgorithm::CodecCost(size_t numel,
                                         const DeviceConfig& dev) const {
  return low_precision_ ? 2.0 * dev.MemPassTime(numel * 4.0) : 0.0;
}

double DecentralizedAlgorithm::WireBytes(size_t numel,
                                         const ClusterTopology& topo,
                                         bool hierarchical) const {
  const double wire =
      low_precision_ ? static_cast<double>(codec_.CompressedBytes(numel))
                     : numel * 4.0;
  const int peers = peers_ == PeerSelection::kRing ? 2 : 1;
  if (hierarchical) {
    return 2.0 * numel * 4.0 + peers * wire / topo.devices_per_node;
  }
  return peers * wire;
}

// -------------------------------------------------------------------- Async

AsyncPsAlgorithm::AsyncPsAlgorithm(
    std::shared_ptr<ShardedParameterServer> server, double lr,
    const Compressor* codec)
    : server_(std::move(server)), lr_(lr), codec_(codec) {
  if (codec_ != nullptr) name_ = "async-lp";
}

Status AsyncPsAlgorithm::Init(BaguaContext* ctx, std::vector<Bucket>* buckets) {
  bucket_offsets_.clear();
  total_numel_ = 0;
  for (const Bucket& b : *buckets) {
    bucket_offsets_.push_back(total_numel_);
    total_numel_ += b.numel;
  }
  if (total_numel_ != server_->total_numel()) {
    return Status::InvalidArgument(
        StrFormat("async server sized %zu, model has %zu params",
                  server_->total_numel(), total_numel_));
  }
  // Rank 0 seeds the server with its (identically initialized) weights.
  if (ctx->rank() == 0) {
    std::vector<float> init(total_numel_);
    for (const Bucket& b : *buckets) {
      std::memcpy(init.data() + bucket_offsets_[b.index],
                  b.flat_value.data(), b.numel * sizeof(float));
    }
    RETURN_IF_ERROR(server_->InitWeights(init.data(), init.size()));
  }
  return Status::OK();
}

Status AsyncPsAlgorithm::OnBucketReady(BaguaContext* ctx, Bucket* bucket) {
  // Push this bucket's gradient slice (applied immediately server-side)
  // and pull the freshest weights for the slice — no cross-worker barrier.
  const size_t offset = bucket_offsets_[bucket->index];
  ArenaScratch push_scratch(&AlgoArena(), total_numel_ * sizeof(float));
  float* scratch = push_scratch.floats();
  // The server applies the whole span; slices outside this bucket must be
  // zero, so clear the (recycled, uninitialized) block explicitly.
  std::memset(scratch, 0, total_numel_ * sizeof(float));
  if (codec_ != nullptr) {
    // async-lp: the gradient crosses the (simulated) wire compressed; the
    // server applies the decoded update.
    Rng rng = ctx->comm.MakeRankRng();
    RETURN_IF_ERROR(RoundTrip(*codec_, bucket->grad_data(), bucket->numel,
                              &rng, scratch + offset));
  } else {
    std::memcpy(scratch + offset, bucket->grad_data(),
                bucket->numel * sizeof(float));
  }
  RETURN_IF_ERROR(server_->PushGradAsync(scratch, total_numel_, lr_));
  RETURN_IF_ERROR(server_->Pull(scratch, total_numel_));
  std::memcpy(bucket->value_data(), scratch + offset,
              bucket->numel * sizeof(float));
  return Status::OK();
}

double AsyncPsAlgorithm::CommCost(size_t numel, const ClusterTopology& topo,
                                  const NetworkConfig& net,
                                  bool hierarchical) const {
  return PsPushPullCost(topo, net, numel * 4.0, topo.num_nodes, hierarchical);
}

double AsyncPsAlgorithm::WireBytes(size_t numel, const ClusterTopology& topo,
                                   bool hierarchical) const {
  if (hierarchical) {
    return 2.0 * numel * 4.0 * (1.0 + 1.0 / topo.devices_per_node);
  }
  return 2.0 * numel * 4.0;
}

// -------------------------------------------------------------- Async decen

Status AsyncDecenAlgorithm::OnBucketReady(BaguaContext* ctx, Bucket* bucket) {
  // 1. Local model update with the local gradient (decentralized pattern).
  RETURN_IF_ERROR(ctx->optimizer->Step(bucket->index, bucket->value_data(),
                                       bucket->grad_data(), bucket->numel));
  TransportGroup* group = ctx->comm.group();
  const int world = ctx->world_size();
  if (world <= 1) return Status::OK();
  const uint64_t tag =
      MakeTag(kGossipSpaceBase + static_cast<uint32_t>(bucket->index), 0);

  // 2. Drain whatever peer models have arrived (never blocks) and average
  // them into the local replica with equal weight.
  std::vector<double> acc(bucket->numel);
  for (size_t i = 0; i < bucket->numel; ++i) {
    acc[i] = bucket->value_data()[i];
  }
  size_t contributions = 1;
  std::vector<uint8_t> payload;
  for (;;) {
    const Status st = group->TryRecvAny(ctx->rank(), tag, &payload);
    if (st.IsNotFound()) break;
    RETURN_IF_ERROR(st);
    if (payload.size() != bucket->numel * sizeof(float)) {
      return Status::Internal("gossip payload size mismatch");
    }
    const float* peer = reinterpret_cast<const float*>(payload.data());
    for (size_t i = 0; i < bucket->numel; ++i) acc[i] += peer[i];
    ++contributions;
  }
  if (contributions > 1) {
    const double inv = 1.0 / static_cast<double>(contributions);
    for (size_t i = 0; i < bucket->numel; ++i) {
      bucket->value_data()[i] = static_cast<float>(acc[i] * inv);
    }
  }

  // 3. Fire the (averaged) model at one pseudo-random peer and move on —
  // the receiver will fold it in whenever it next looks. A dead peer is
  // simply skipped (still consuming the rng draw so survivors' peer
  // sequences are unchanged): gossip degrades gracefully to the surviving
  // membership.
  Rng rng = ctx->comm.MakeRankRng();
  int peer = static_cast<int>(rng.UniformInt(world - 1));
  if (peer >= ctx->rank()) ++peer;
  if (!group->IsAlive(peer)) return Status::OK();
  return group->Send(ctx->rank(), peer, tag, bucket->value_data(),
                     bucket->numel * sizeof(float));
}

Status AsyncDecenAlgorithm::Finish(BaguaContext* ctx) {
  // Drain any gossip still in flight so the transport ends quiescent.
  TransportGroup* group = ctx->comm.group();
  std::vector<uint8_t> payload;
  for (uint32_t b = 0; b < 4096; ++b) {
    while (group->TryRecvAny(ctx->rank(), MakeTag(kGossipSpaceBase + b, 0),
                             &payload)
               .ok()) {
    }
    if (b > 64) break;  // buckets beyond runtime sizes cannot exist
  }
  return Status::OK();
}

double AsyncDecenAlgorithm::CommCost(size_t numel, const ClusterTopology& topo,
                                     const NetworkConfig& net,
                                     bool hierarchical) const {
  return DecenRandomCost(topo, net, numel * 4.0, numel * 4.0, hierarchical);
}

double AsyncDecenAlgorithm::WireBytes(size_t numel,
                                      const ClusterTopology& topo,
                                      bool hierarchical) const {
  if (hierarchical) {
    return 2.0 * numel * 4.0 + numel * 4.0 / topo.devices_per_node;
  }
  return numel * 4.0;
}

// ----------------------------------------------------------------- LocalSGD

LocalSgdAlgorithm::LocalSgdAlgorithm(uint64_t period)
    : name_(StrFormat("local-sgd-%llu", (unsigned long long)period)),
      period_(period == 0 ? 1 : period) {}

Status LocalSgdAlgorithm::OnBucketReady(BaguaContext* ctx, Bucket* bucket) {
  // Always update locally; average models every `period` steps.
  RETURN_IF_ERROR(ctx->optimizer->Step(bucket->index, bucket->value_data(),
                                       bucket->grad_data(), bucket->numel));
  if ((ctx->step + 1) % period_ == 0) {
    RETURN_IF_ERROR(CFpS(&ctx->comm, bucket->value_data(), bucket->numel));
    Scale(bucket->value_data(), 1.0f / static_cast<float>(ctx->world_size()),
          bucket->numel);
  }
  return Status::OK();
}

double LocalSgdAlgorithm::CommCost(size_t numel, const ClusterTopology& topo,
                                   const NetworkConfig& net,
                                   bool hierarchical) const {
  // Amortized: one synchronization every `period` iterations.
  return EstimateCFpSCost(topo, net, numel * 4.0, hierarchical) /
         static_cast<double>(period_);
}

double LocalSgdAlgorithm::WireBytes(size_t numel, const ClusterTopology& topo,
                                    bool hierarchical) const {
  AllreduceAlgorithm ar;
  return ar.WireBytes(numel, topo, hierarchical) /
         static_cast<double>(period_);
}

// ------------------------------------------------------------ fp16 allreduce

Status Fp16AllreduceAlgorithm::OnBucketReady(BaguaContext* ctx,
                                             Bucket* bucket) {
  RETURN_IF_ERROR(
      CLpS(&ctx->comm, codec_, bucket->grad_data(), bucket->numel, nullptr));
  return ApplyAveragedGrad(ctx, bucket);
}

double Fp16AllreduceAlgorithm::CommCost(size_t numel,
                                        const ClusterTopology& topo,
                                        const NetworkConfig& net,
                                        bool hierarchical) const {
  return EstimateCLpSCost(topo, net, codec_, numel, hierarchical);
}

double Fp16AllreduceAlgorithm::CodecCost(size_t numel,
                                         const DeviceConfig& dev) const {
  return 2.0 * dev.MemPassTime(numel * 4.0);
}

double Fp16AllreduceAlgorithm::WireBytes(size_t numel,
                                         const ClusterTopology& topo,
                                         bool hierarchical) const {
  const double wire = static_cast<double>(codec_.CompressedBytes(numel));
  if (hierarchical) {
    return 2.0 * numel * 4.0 + 2.0 * wire / topo.devices_per_node;
  }
  return 2.0 * wire;
}

// ------------------------------------------------------------ bf16 wire

Status Bf16AllreduceAlgorithm::OnBucketReady(BaguaContext* ctx,
                                             Bucket* bucket) {
  // Route this bucket's CFpS over the bf16 wire; restore the context's
  // dtype after, so the algorithm composes with runtimes configured for
  // any default.
  const WireDtype prev = ctx->comm.wire_dtype;
  ctx->comm.wire_dtype = WireDtype::kBf16;
  const Status st = CFpS(&ctx->comm, bucket->grad_data(), bucket->numel);
  ctx->comm.wire_dtype = prev;
  RETURN_IF_ERROR(st);
  return ApplyAveragedGrad(ctx, bucket);
}

double Bf16AllreduceAlgorithm::CommCost(size_t numel,
                                        const ClusterTopology& topo,
                                        const NetworkConfig& net,
                                        bool hierarchical) const {
  const double wire_bytes = numel * 2.0;
  if (!hierarchical || topo.devices_per_node == 1) {
    return ChainAllreduceWireCost(topo, net, wire_bytes);
  }
  switch (ChooseAllreduceAlgo(topo, static_cast<size_t>(wire_bytes))) {
    case AllreduceAlgo::kTree:
      return TreeAllreduceCost(topo, net, topo.world_size(), wire_bytes);
    case AllreduceAlgo::kHierarchical:
    case AllreduceAlgo::kFlatRing:
      // The two-tier wire chain shares the leader chain + member
      // gather/fan-out structure; price it as the chain over the leader
      // path plus one intra hop each way.
      return ChainAllreduceWireCost(topo, net, wire_bytes) +
             2.0 * net.intra_latency_s;
  }
  return ChainAllreduceWireCost(topo, net, wire_bytes);
}

double Bf16AllreduceAlgorithm::CodecCost(size_t numel,
                                         const DeviceConfig& dev) const {
  // Pack on send + unpack on receive: two elementwise passes.
  return 2.0 * dev.MemPassTime(numel * 4.0);
}

double Bf16AllreduceAlgorithm::WireBytes(size_t numel,
                                         const ClusterTopology& topo,
                                         bool hierarchical) const {
  const double wire = numel * 2.0;  // 2-byte elements end to end
  const double m = static_cast<double>(topo.world_size());
  if (m <= 1.0) return 0.0;
  if (hierarchical && topo.devices_per_node > 1) {
    switch (ChooseAllreduceAlgo(topo, static_cast<size_t>(wire))) {
      case AllreduceAlgo::kTree: {
        const double slots = static_cast<double>(
            TreeGatherTotalSlots(static_cast<size_t>(m)) +
            static_cast<size_t>(m) - 1);
        return slots * wire / m;
      }
      case AllreduceAlgo::kHierarchical: {
        const double d = static_cast<double>(topo.devices_per_node);
        const double nodes = static_cast<double>(topo.num_nodes);
        // Members: one packed vector each way. Leaders: chain hops up and
        // down. Per-rank average over a node's d ranks.
        return (2.0 * (d - 1.0) + 2.0 * (nodes - 1.0) / nodes) * wire / d;
      }
      case AllreduceAlgo::kFlatRing:
        break;
    }
  }
  // Flat chain: 2(m-1) hops of the full wire payload, averaged per rank.
  return 2.0 * (m - 1.0) * wire / m;
}

}  // namespace bagua
