#ifndef BAGUA_SERVE_SERVING_H_
#define BAGUA_SERVE_SERVING_H_

#include <cstdint>
#include <vector>

#include "base/status.h"
#include "model/embedding.h"
#include "serve/batcher.h"
#include "transport/transport.h"

namespace bagua {

/// \brief Configuration of one serving replay (see RunServingReplay).
struct ServingConfig {
  DlrmConfig model;
  int world = 4;                ///< shard + front-end replica count
  size_t num_requests = 1024;   ///< length of the replayed stream
  BatchingPolicy policy;        ///< dynamic batching dial
  size_t cache_rows = 256;      ///< per-rank LRU capacity; 0 disables
  double mean_interarrival_us = 50.0;  ///< Poisson arrival spacing
  size_t warmup_batches = 4;    ///< excluded from the steady-state
                                ///< pool-miss accounting
  uint64_t seed = 42;           ///< arrival-process stream
};

/// \brief What a replay reports. `logits` is the deterministic output
/// (request-indexed, bitwise comparable across batching/caching
/// configurations); latency and QPS are the serving metrics the bench
/// gate consumes.
struct ServingReport {
  uint64_t requests = 0;
  /// Hybrid per-request latency: virtual queueing delay (batch close -
  /// arrival, from the seeded timeline) plus measured wall service time
  /// of the request's batch, microseconds.
  double p50_latency_us = 0.0;
  double p99_latency_us = 0.0;
  /// requests / summed batch service wall time (rank 0's measurement).
  double qps = 0.0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  double cache_hit_rate = 0.0;  ///< hits / (hits + misses), all ranks
  /// Transport-pool misses after the warmup batches: the zero-allocation
  /// gate (scripts/serve_gate.sh asserts this stays 0 on a pooled group).
  uint64_t pool_misses_steady = 0;
  double service_wall_s = 0.0;
  std::vector<float> logits;  ///< [num_requests], logits[i] = request i
  /// Per-request hybrid latency, microseconds (basis of the percentiles;
  /// in a collective-form partial report only owned slots are set).
  std::vector<double> latency_us;
};

/// \brief Replays a seeded request stream against a sharded embedding
/// store and reports serving metrics.
///
/// Every rank of `group` is both a storage shard (ps/embedding_store.h
/// owns its row range) and a front-end replica. The stream's virtual
/// arrival timeline and batch boundaries are formed once, identically on
/// every rank (serve/batcher.h is pure); requests are then dealt
/// round-robin — request i is served by rank i mod world — so per-rank
/// loads differ but every rank walks the same global batch sequence and
/// the sparse Gathers stay collective.
///
/// Per batch, a rank: draws its requests' features (model/embedding.h
/// SampleRequest), filters needed rows through its LRU hot-row cache
/// (serve/cache.h), Gathers only the misses, pools rows per bag
/// (PoolRows) and runs the DLRM dense stack (ForwardPooled). Because
/// pooling order, GEMM accumulation order, and cached bytes are all
/// independent of how requests were batched, `logits` is bitwise
/// identical for ANY (max_batch, max_delay, cache_rows) setting — the
/// serving analogue of the repo's "relaxations don't change the bytes"
/// contract, asserted by tests/serving_test.cc and the bench gate.
///
/// Collective: call from every rank's thread (base/sync.h ParallelFor)
/// with the same config; `report` may be shared (rank 0 fills it).
Status RunServingReplay(const ServingConfig& config, TransportGroup* group,
                        int rank, ServingReport* report);

/// Convenience single-call form: builds a pooled TransportGroup, spawns
/// config.world rank threads, runs the replay, returns rank 0's report.
Status RunServingReplay(const ServingConfig& config, ServingReport* report);

}  // namespace bagua

#endif  // BAGUA_SERVE_SERVING_H_
