#ifndef BAGUA_SERVE_BATCHER_H_
#define BAGUA_SERVE_BATCHER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bagua {

/// \brief Dynamic batching policy: a batch closes when it holds max_batch
/// requests or when max_delay_us has elapsed since its first request,
/// whichever comes first — the classic throughput/latency dial of a
/// serving front end.
struct BatchingPolicy {
  size_t max_batch = 32;
  uint64_t max_delay_us = 1000;
};

/// \brief One request of the replayed stream. `arrival_us` is *virtual*
/// time (deterministic, from the seeded arrival process), never wall
/// time; `index` identifies the request's payload (model/embedding.h
/// SampleRequest draws features from it).
struct ServeRequest {
  uint64_t index = 0;
  uint64_t arrival_us = 0;
};

/// \brief A closed batch: requests [begin, begin+count) of the stream,
/// dispatched at virtual time close_us.
struct RequestBatch {
  size_t begin = 0;
  size_t count = 0;
  uint64_t close_us = 0;
};

/// \brief Groups an arrival-ordered request stream into batches under
/// `policy`.
///
/// A pure function of (requests, policy): batch formation is replayed
/// over the virtual arrival timestamps, not measured on a live queue, so
/// the batch boundaries — and everything downstream of them — are
/// deterministic. A batch opening at t0 absorbs requests arriving in
/// (t0, t0 + max_delay_us] up to max_batch; it closes at the arrival of
/// its max_batch-th request or at t0 + max_delay_us, whichever is
/// earlier. Every request's queueing delay is close_us - arrival_us.
std::vector<RequestBatch> FormBatches(const std::vector<ServeRequest>& requests,
                                      const BatchingPolicy& policy);

/// \brief Draws `n` requests with exponential(mean_interarrival_us)
/// virtual inter-arrival gaps from `seed` — a deterministic Poisson
/// process, arrival-sorted by construction.
std::vector<ServeRequest> GenerateArrivals(size_t n,
                                           double mean_interarrival_us,
                                           uint64_t seed);

}  // namespace bagua

#endif  // BAGUA_SERVE_BATCHER_H_
