#include "serve/serving.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <numeric>
#include <unordered_map>

#include "base/strings.h"
#include "base/sync.h"
#include "ps/embedding_store.h"
#include "serve/cache.h"
#include "tensor/tensor.h"
#include "trace/trace.h"

namespace bagua {

namespace {

double PercentileOf(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t idx = static_cast<size_t>(q * (values.size() - 1));
  return values[idx];
}

}  // namespace

Status RunServingReplay(const ServingConfig& config, TransportGroup* group,
                        int rank, ServingReport* report) {
  const DlrmConfig& mc = config.model;
  const int world = config.world;
  if (world <= 0 || group->world_size() < world) {
    return Status::InvalidArgument("serving: bad world size");
  }
  const size_t dim = mc.dim;
  const size_t slots = mc.num_tables * mc.slots_per_bag;  // rows per request

  std::vector<int> ranks(world);
  std::iota(ranks.begin(), ranks.end(), 0);

  // Identical on every rank: the model, the store's contents (per-global-
  // row init streams), the virtual timeline, and the batch boundaries.
  DlrmModel model(mc);
  EmbeddingShard shard(group, ranks, rank, mc.total_rows(), dim, mc.seed);
  LruRowCache cache(config.cache_rows, dim);
  const std::vector<ServeRequest> requests = GenerateArrivals(
      config.num_requests, config.mean_interarrival_us, config.seed);
  const std::vector<RequestBatch> batches =
      FormBatches(requests, config.policy);

  report->requests = config.num_requests;
  report->logits.assign(config.num_requests, 0.0f);
  report->latency_us.assign(config.num_requests, 0.0);

  // An empty Gather exchanges only headers: a group-wide sync point on the
  // sparse-PS tag space (every member must enter before any can leave).
  auto barrier = [&]() -> Status {
    std::vector<float> none;
    return shard.Gather({}, &none);
  };

  // Park worst-case per-class buffer demand in the pool up front: the
  // per-batch miss count (and so the Gather payload size class) keeps
  // fluctuating with cache state, and a post-warmup batch that first
  // touches a class — or spikes a class's concurrent in-flight demand —
  // would otherwise register a pool miss. Mirrors comm_gate.h PrimePool.
  if (rank == 0) {
    const size_t worst = std::max<size_t>(
        std::min<size_t>(config.policy.max_batch, config.num_requests),
        size_t{1}) * slots * dim * sizeof(float);
    const size_t per_class = 2 * static_cast<size_t>(world) + 2;
    std::vector<std::vector<uint8_t>> parked;
    for (size_t bytes = 64; bytes < worst * 2; bytes *= 2) {
      for (size_t k = 0; k < per_class; ++k) {
        parked.push_back(group->AcquireBuffer(bytes));
      }
    }
    for (auto& buf : parked) group->Recycle(std::move(buf));
  }

  const size_t warm = std::min<size_t>(config.warmup_batches, batches.size());
  uint64_t pool_miss_snapshot = 0;
  bool snapped = false;
  double service_wall_s = 0.0;

  // Per-batch scratch, reused so the replay's own heap churn settles too.
  std::vector<size_t> owned;           // global request indices of this rank
  std::vector<float> dense_req;        // one request's dense features
  std::vector<uint32_t> ids_req;       // one request's local table ids
  std::vector<float> rows;             // [owned, slots, dim] gathered rows
  std::vector<uint64_t> miss_ids;      // cache misses, first-seen order
  std::vector<std::pair<size_t, size_t>> pending;  // (slot, miss position)
  std::unordered_map<uint64_t, size_t> miss_pos;
  std::vector<float> gathered;

  for (size_t b = 0; b < batches.size(); ++b) {
    const RequestBatch& batch = batches[b];
    const auto t_begin = std::chrono::steady_clock::now();

    owned.clear();
    for (size_t t = batch.begin; t < batch.begin + batch.count; ++t) {
      if (requests[t].index % static_cast<uint64_t>(world) ==
          static_cast<uint64_t>(rank)) {
        owned.push_back(t);
      }
    }
    TraceSpan span(rank, TraceStream::kServe, "serve.batch",
                   owned.size() * slots * dim * sizeof(float),
                   static_cast<int>(b));
    TraceIncrement(rank, "serve.requests", owned.size());

    // Draw features and route every needed row through the cache; only
    // misses (deduplicated within the batch) go to the sharded store.
    rows.resize(owned.size() * slots * dim);
    Tensor dense = Tensor::Zeros({owned.size(), mc.dense_dim}, "serve.dense");
    miss_ids.clear();
    pending.clear();
    miss_pos.clear();
    for (size_t k = 0; k < owned.size(); ++k) {
      model.SampleRequest(requests[owned[k]].index, &dense_req, &ids_req);
      std::memcpy(dense.data() + k * mc.dense_dim, dense_req.data(),
                  mc.dense_dim * sizeof(float));
      for (size_t s = 0; s < slots; ++s) {
        const size_t table = s / mc.slots_per_bag;
        const uint64_t gid = mc.GlobalRow(table, ids_req[s]);
        const size_t slot = k * slots + s;
        if (const float* row = cache.Lookup(gid)) {
          std::memcpy(rows.data() + slot * dim, row, dim * sizeof(float));
          continue;
        }
        auto it = miss_pos.find(gid);
        if (it == miss_pos.end()) {
          it = miss_pos.emplace(gid, miss_ids.size()).first;
          miss_ids.push_back(gid);
        }
        pending.emplace_back(slot, it->second);
      }
    }

    // Collective even when this rank has no misses (peers may).
    RETURN_IF_ERROR(shard.Gather(miss_ids, &gathered));
    for (const auto& [slot, pos] : pending) {
      std::memcpy(rows.data() + slot * dim, gathered.data() + pos * dim,
                  dim * sizeof(float));
    }
    for (size_t i = 0; i < miss_ids.size(); ++i) {
      cache.Insert(miss_ids[i], gathered.data() + i * dim);
    }

    if (!owned.empty()) {
      Tensor pooled =
          Tensor::Zeros({owned.size(), mc.num_tables * dim}, "serve.pooled");
      for (size_t k = 0; k < owned.size(); ++k) {
        for (size_t t = 0; t < mc.num_tables; ++t) {
          PoolRows(rows.data() + (k * slots + t * mc.slots_per_bag) * dim,
                   mc.slots_per_bag, dim, mc.pooling,
                   pooled.data() + k * mc.num_tables * dim + t * dim);
        }
      }
      Tensor out;
      RETURN_IF_ERROR(model.ForwardPooled(dense, pooled, &out));
      for (size_t k = 0; k < owned.size(); ++k) {
        report->logits[requests[owned[k]].index] = out[k];
      }
    }

    const double wall_us =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - t_begin)
            .count();
    service_wall_s += wall_us * 1e-6;
    for (const size_t t : owned) {
      const double queue_us =
          static_cast<double>(batch.close_us - requests[t].arrival_us);
      report->latency_us[requests[t].index] = queue_us + wall_us;
    }

    if (b + 1 == warm) {
      // Quiesce, snapshot the pool on rank 0, then hold everyone until the
      // snapshot is taken (the second barrier's rank-0 message cannot be
      // sent before it): from here on the pooled transport must not miss.
      RETURN_IF_ERROR(barrier());
      if (rank == 0) pool_miss_snapshot = group->pool_stats().misses;
      snapped = true;
      RETURN_IF_ERROR(barrier());
    }
  }

  RETURN_IF_ERROR(barrier());
  if (rank == 0) {
    const uint64_t misses = group->pool_stats().misses;
    report->pool_misses_steady = snapped ? misses - pool_miss_snapshot : 0;
  }
  report->cache_hits = cache.hits();
  report->cache_misses = cache.misses();
  const uint64_t looked = cache.hits() + cache.misses();
  report->cache_hit_rate =
      looked > 0 ? static_cast<double>(cache.hits()) / looked : 0.0;
  report->service_wall_s = service_wall_s;
  report->qps = service_wall_s > 0.0
                    ? static_cast<double>(config.num_requests) / service_wall_s
                    : 0.0;

  // Rank-local percentile view; the merging caller recomputes globally.
  std::vector<double> mine;
  for (size_t i = rank; i < report->latency_us.size();
       i += static_cast<size_t>(world)) {
    mine.push_back(report->latency_us[i]);
  }
  report->p50_latency_us = PercentileOf(mine, 0.50);
  report->p99_latency_us = PercentileOf(mine, 0.99);
  return Status::OK();
}

Status RunServingReplay(const ServingConfig& config, ServingReport* report) {
  if (config.world <= 0) {
    return Status::InvalidArgument("serving: world must be positive");
  }
  TransportGroup group(config.world);
  std::vector<ServingReport> partial(config.world);
  std::vector<Status> status(config.world, Status::OK());
  ParallelFor(static_cast<size_t>(config.world), [&](size_t r) {
    status[r] = RunServingReplay(config, &group, static_cast<int>(r),
                                 &partial[r]);
  });
  for (const Status& s : status) RETURN_IF_ERROR(s);

  // Merge: request i's logit and latency live on rank i mod world; cache
  // counters sum; timing and pool accounting follow rank 0.
  report->requests = config.num_requests;
  report->logits.assign(config.num_requests, 0.0f);
  report->latency_us.assign(config.num_requests, 0.0);
  report->cache_hits = 0;
  report->cache_misses = 0;
  for (int r = 0; r < config.world; ++r) {
    for (size_t i = static_cast<size_t>(r); i < config.num_requests;
         i += static_cast<size_t>(config.world)) {
      report->logits[i] = partial[r].logits[i];
      report->latency_us[i] = partial[r].latency_us[i];
    }
    report->cache_hits += partial[r].cache_hits;
    report->cache_misses += partial[r].cache_misses;
  }
  const uint64_t looked = report->cache_hits + report->cache_misses;
  report->cache_hit_rate =
      looked > 0 ? static_cast<double>(report->cache_hits) / looked : 0.0;
  report->pool_misses_steady = partial[0].pool_misses_steady;
  report->service_wall_s = partial[0].service_wall_s;
  report->qps = partial[0].qps;
  report->p50_latency_us = PercentileOf(report->latency_us, 0.50);
  report->p99_latency_us = PercentileOf(report->latency_us, 0.99);
  return Status::OK();
}

}  // namespace bagua
