#ifndef BAGUA_SERVE_PRICING_H_
#define BAGUA_SERVE_PRICING_H_

#include <cstddef>

#include "model/embedding.h"
#include "sim/collective_cost.h"
#include "sim/network.h"
#include "sim/topology.h"

namespace bagua {

/// \brief Offline price of one serving batch on the simulated fabric.
///
/// The same DES cost model that prices training iterations
/// (sim/collective_cost.h alpha-beta flows) applied to the serving data
/// path: an ids AllToAll out, a rows AllToAll back, then the dense DLRM
/// stack. What-if analysis for the serving knobs — batch size, embedding
/// dim, world size — without running the live bench.
struct ServingCost {
  double ids_alltoall_s = 0.0;   ///< request ids to their shard owners
  double rows_alltoall_s = 0.0;  ///< embedding rows back to the requester
  double forward_s = 0.0;        ///< bottom MLP + top MLP on the batch
  double batch_s = 0.0;          ///< end-to-end, the sum of the above
  double qps_bound = 0.0;        ///< world * batch_per_member / batch_s
};

/// Prices one global batch of `batch_per_member` requests per member over
/// the first `world` devices of `topo`. `cache_hit_rate` scales the
/// gathered-row volume down (hits never cross the wire); `flops_per_s` is
/// the achieved dense-compute rate per member.
ServingCost PriceServingBatch(const DlrmConfig& model,
                              const ClusterTopology& topo,
                              const NetworkConfig& net, int world,
                              size_t batch_per_member, double cache_hit_rate,
                              double flops_per_s);

}  // namespace bagua

#endif  // BAGUA_SERVE_PRICING_H_
