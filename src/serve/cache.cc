#include "serve/cache.h"

#include <cstring>

#include "base/arena.h"

namespace bagua {

LruRowCache::LruRowCache(size_t capacity, size_t dim)
    : capacity_(capacity), dim_(dim) {
  arena_.resize(capacity_ * dim_);
  map_.reserve(capacity_);
  // The row store is the serving footprint that grows with cache size;
  // attribute it so `memory.serve.cache.live_bytes` reflects every
  // resident front-end cache.
  MemoryRegistry::Global().ArenaFor("serve.cache").NoteExternalAlloc(
      arena_.capacity() * sizeof(float));
}

LruRowCache::~LruRowCache() {
  MemoryRegistry::Global().ArenaFor("serve.cache").NoteExternalFree(
      arena_.capacity() * sizeof(float));
}

const float* LruRowCache::Lookup(uint64_t id) {
  auto it = map_.find(id);
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return arena_.data() + it->second->slot * dim_;
}

void LruRowCache::Insert(uint64_t id, const float* row) {
  if (capacity_ == 0) return;
  auto it = map_.find(id);
  if (it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    std::memcpy(arena_.data() + it->second->slot * dim_, row,
                dim_ * sizeof(float));
    return;
  }
  size_t slot;
  if (map_.size() < capacity_) {
    slot = map_.size();
  } else {
    const Entry victim = lru_.back();
    lru_.pop_back();
    map_.erase(victim.id);
    slot = victim.slot;
  }
  lru_.push_front({id, slot});
  map_[id] = lru_.begin();
  std::memcpy(arena_.data() + slot * dim_, row, dim_ * sizeof(float));
}

}  // namespace bagua
