#include "serve/pricing.h"

#include <numeric>
#include <vector>

#include "base/logging.h"

namespace bagua {

namespace {

// Forward FLOPs of one sample through the dense stack: 2*in*out per
// affine layer, bottom (dense_dim -> hidden... -> dim) plus top
// (concat -> hidden... -> 1). Embedding lookups are memory-bound and
// priced as communication, not FLOPs.
double DenseFlopsPerSample(const DlrmConfig& m) {
  double flops = 0.0;
  size_t in = m.dense_dim;
  for (size_t h : m.bottom_hidden) {
    flops += 2.0 * static_cast<double>(in) * static_cast<double>(h);
    in = h;
  }
  flops += 2.0 * static_cast<double>(in) * static_cast<double>(m.dim);
  in = m.dim * (m.num_tables + 1);
  for (size_t h : m.top_hidden) {
    flops += 2.0 * static_cast<double>(in) * static_cast<double>(h);
    in = h;
  }
  flops += 2.0 * static_cast<double>(in);
  return flops;
}

}  // namespace

ServingCost PriceServingBatch(const DlrmConfig& model,
                              const ClusterTopology& topo,
                              const NetworkConfig& net, int world,
                              size_t batch_per_member, double cache_hit_rate,
                              double flops_per_s) {
  BAGUA_CHECK_GT(world, 0);
  BAGUA_CHECK_LE(world, topo.world_size());
  BAGUA_CHECK_GT(flops_per_s, 0.0);
  if (cache_hit_rate < 0.0) cache_hit_rate = 0.0;
  if (cache_hit_rate > 1.0) cache_hit_rate = 1.0;

  std::vector<int> ranks(world);
  std::iota(ranks.begin(), ranks.end(), 0);

  // Row-range sharding spreads lookups uniformly in expectation, so each
  // ordered pair carries 1/world of a member's miss traffic. Hits are
  // served from the local LRU and never reach the fabric.
  const double lookups = static_cast<double>(batch_per_member) *
                         static_cast<double>(model.num_tables) *
                         static_cast<double>(model.slots_per_bag) *
                         (1.0 - cache_hit_rate);
  const double ids_per_pair =
      lookups * sizeof(uint64_t) / static_cast<double>(world);
  const double rows_per_pair = lookups * static_cast<double>(model.dim) *
                               sizeof(float) / static_cast<double>(world);

  ServingCost cost;
  if (world > 1) {
    cost.ids_alltoall_s = AllToAllCost(topo, net, ranks, ids_per_pair);
    cost.rows_alltoall_s = AllToAllCost(topo, net, ranks, rows_per_pair);
  }
  cost.forward_s = DenseFlopsPerSample(model) *
                   static_cast<double>(batch_per_member) / flops_per_s;
  cost.batch_s = cost.ids_alltoall_s + cost.rows_alltoall_s + cost.forward_s;
  const double requests =
      static_cast<double>(batch_per_member) * static_cast<double>(world);
  cost.qps_bound = cost.batch_s > 0.0 ? requests / cost.batch_s : 0.0;
  return cost;
}

}  // namespace bagua
