#ifndef BAGUA_SERVE_CACHE_H_
#define BAGUA_SERVE_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

namespace bagua {

/// \brief LRU cache of embedding rows, keyed by global row id.
///
/// The serving front end's hot-row cache: under skewed access
/// (model/embedding.h SampleSkewedId) a small cache absorbs most lookups,
/// turning remote Gather traffic into local copies. Storage is one flat
/// [capacity, dim] float arena — inserting into a full cache evicts the
/// least recently used row and reuses its slot, so a warmed cache never
/// allocates.
///
/// Rows are cached by value and the backing store is read-only during a
/// replay, so a cache hit returns bytes identical to a fresh Gather —
/// which is why cached and uncached serving produce bitwise-identical
/// logits (tests/serving_test.cc). Eviction order is a pure function of
/// the lookup/insert sequence: deterministic for a deterministic replay.
///
/// Not thread-safe; each front-end rank owns one.
class LruRowCache {
 public:
  /// `capacity` == 0 disables caching (every Lookup misses, Insert drops).
  /// The flat row store is attributed to the "serve.cache" arena gauges
  /// for its lifetime (storage stays vector-owned).
  LruRowCache(size_t capacity, size_t dim);
  ~LruRowCache();

  LruRowCache(const LruRowCache&) = delete;
  LruRowCache& operator=(const LruRowCache&) = delete;

  /// Returns the cached row and refreshes its recency, or nullptr (a
  /// miss). The pointer is valid until the next Insert.
  const float* Lookup(uint64_t id);

  /// Copies `row` (dim floats) in, evicting the LRU row if full.
  /// Re-inserting a resident id refreshes its bytes and recency.
  void Insert(uint64_t id, const float* row);

  size_t size() const { return map_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  struct Entry {
    uint64_t id;
    size_t slot;  // row offset into arena_
  };

  size_t capacity_;
  size_t dim_;
  std::vector<float> arena_;            // [capacity, dim]
  std::list<Entry> lru_;                // front = most recent
  std::unordered_map<uint64_t, std::list<Entry>::iterator> map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace bagua

#endif  // BAGUA_SERVE_CACHE_H_
