#include "serve/batcher.h"

#include <cmath>

#include "base/logging.h"
#include "base/rng.h"

namespace bagua {

std::vector<RequestBatch> FormBatches(
    const std::vector<ServeRequest>& requests, const BatchingPolicy& policy) {
  const size_t max_batch = policy.max_batch > 0 ? policy.max_batch : 1;
  std::vector<RequestBatch> batches;
  size_t begin = 0;
  while (begin < requests.size()) {
    const uint64_t t0 = requests[begin].arrival_us;
    const uint64_t deadline = t0 + policy.max_delay_us;
    size_t count = 1;
    while (begin + count < requests.size() && count < max_batch &&
           requests[begin + count].arrival_us <= deadline) {
      ++count;
    }
    const uint64_t close_us = count == max_batch
                                  ? requests[begin + count - 1].arrival_us
                                  : deadline;
    batches.push_back({begin, count, close_us});
    begin += count;
  }
  return batches;
}

std::vector<ServeRequest> GenerateArrivals(size_t n,
                                           double mean_interarrival_us,
                                           uint64_t seed) {
  BAGUA_CHECK_GT(mean_interarrival_us, 0.0);
  Rng rng(MixSeed(seed, 0x5EE0A10Cull));
  std::vector<ServeRequest> requests(n);
  double t = 0.0;
  for (size_t i = 0; i < n; ++i) {
    t += -std::log(1.0 - rng.Uniform()) * mean_interarrival_us;
    requests[i].index = i;
    requests[i].arrival_us = static_cast<uint64_t>(t);
  }
  return requests;
}

}  // namespace bagua
