#ifndef BAGUA_MODEL_SCHEDULER_H_
#define BAGUA_MODEL_SCHEDULER_H_

#include <cstdint>

#include "base/logging.h"

namespace bagua {

/// \brief Learning-rate schedule: linear warmup followed by cosine decay —
/// the schedule the paper's BERT finetune and 1-bit Adam recipes rely on
/// (warmup is what keeps aggressive compression stable early on).
class LrScheduler {
 public:
  /// \param base_lr the plateau learning rate after warmup.
  /// \param warmup_steps linear ramp 0 -> base_lr over this many steps.
  /// \param total_steps cosine-decays to `final_fraction * base_lr` by here;
  ///        0 disables decay (constant after warmup).
  LrScheduler(double base_lr, uint64_t warmup_steps, uint64_t total_steps = 0,
              double final_fraction = 0.0)
      : base_lr_(base_lr),
        warmup_steps_(warmup_steps),
        total_steps_(total_steps),
        final_fraction_(final_fraction) {
    BAGUA_CHECK_GE(base_lr, 0.0);
    if (total_steps > 0) BAGUA_CHECK_GE(total_steps, warmup_steps);
  }

  /// Learning rate at (0-indexed) step `step`.
  double LrAt(uint64_t step) const;

  double base_lr() const { return base_lr_; }

 private:
  double base_lr_;
  uint64_t warmup_steps_;
  uint64_t total_steps_;
  double final_fraction_;
};

}  // namespace bagua

#endif  // BAGUA_MODEL_SCHEDULER_H_
