#include "model/loss.h"

#include <cmath>

#include "base/strings.h"

namespace bagua {

Status SoftmaxCrossEntropy(const Tensor& logits, const Tensor& labels,
                           double* loss, Tensor* grad_logits) {
  const size_t batch = labels.numel();
  if (batch == 0 || logits.numel() % batch != 0) {
    return Status::InvalidArgument("cross-entropy shape mismatch");
  }
  const size_t classes = logits.numel() / batch;
  if (grad_logits != nullptr) {
    *grad_logits = Tensor::Zeros({batch, classes}, "ce.grad");
  }
  double total = 0.0;
  for (size_t r = 0; r < batch; ++r) {
    const float* row = logits.data() + r * classes;
    const long label = std::lround(labels[r]);
    if (label < 0 || static_cast<size_t>(label) >= classes) {
      return Status::InvalidArgument(
          StrFormat("label %ld out of range [0, %zu)", label, classes));
    }
    float maxv = row[0];
    for (size_t c = 1; c < classes; ++c) maxv = std::max(maxv, row[c]);
    double denom = 0.0;
    for (size_t c = 0; c < classes; ++c) denom += std::exp(row[c] - maxv);
    const double log_denom = std::log(denom);
    total += -(row[label] - maxv - log_denom);
    if (grad_logits != nullptr) {
      float* grow = grad_logits->data() + r * classes;
      for (size_t c = 0; c < classes; ++c) {
        const double p = std::exp(row[c] - maxv) / denom;
        grow[c] = static_cast<float>(
            (p - (static_cast<size_t>(label) == c ? 1.0 : 0.0)) / batch);
      }
    }
  }
  *loss = total / static_cast<double>(batch);
  return Status::OK();
}

Status MseLoss(const Tensor& pred, const Tensor& target, double* loss,
               Tensor* grad_pred) {
  if (pred.numel() != target.numel() || pred.numel() == 0) {
    return Status::InvalidArgument("mse shape mismatch");
  }
  const size_t n = pred.numel();
  if (grad_pred != nullptr) {
    *grad_pred = Tensor::Zeros(pred.shape(), "mse.grad");
  }
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(pred[i]) - target[i];
    total += d * d;
    if (grad_pred != nullptr) {
      (*grad_pred)[i] = static_cast<float>(2.0 * d / n);
    }
  }
  *loss = total / static_cast<double>(n);
  return Status::OK();
}

Result<double> Accuracy(const Tensor& logits, const Tensor& labels) {
  const size_t batch = labels.numel();
  if (batch == 0 || logits.numel() % batch != 0) {
    return Status::InvalidArgument("accuracy shape mismatch");
  }
  const size_t classes = logits.numel() / batch;
  size_t correct = 0;
  for (size_t r = 0; r < batch; ++r) {
    const float* row = logits.data() + r * classes;
    size_t best = 0;
    for (size_t c = 1; c < classes; ++c) {
      if (row[c] > row[best]) best = c;
    }
    if (best == static_cast<size_t>(std::lround(labels[r]))) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(batch);
}

}  // namespace bagua
