#ifndef BAGUA_MODEL_LOSS_H_
#define BAGUA_MODEL_LOSS_H_

#include "base/status.h"
#include "tensor/tensor.h"

namespace bagua {

/// \brief Softmax cross-entropy over logits [batch, classes] against integer
/// labels stored as floats in `labels[batch]`.
///
/// Returns the mean loss; `grad_logits` (if non-null) receives
/// d(mean loss)/d(logits), ready to feed Net::Backward.
Status SoftmaxCrossEntropy(const Tensor& logits, const Tensor& labels,
                           double* loss, Tensor* grad_logits);

/// \brief Mean squared error over predictions [batch, dim] against targets
/// of the same shape. Loss = mean over all elements of (pred - target)^2.
Status MseLoss(const Tensor& pred, const Tensor& target, double* loss,
               Tensor* grad_pred);

/// \brief Fraction of rows whose argmax matches the label.
Result<double> Accuracy(const Tensor& logits, const Tensor& labels);

}  // namespace bagua

#endif  // BAGUA_MODEL_LOSS_H_
