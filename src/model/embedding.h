#ifndef BAGUA_MODEL_EMBEDDING_H_
#define BAGUA_MODEL_EMBEDDING_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "model/layer.h"

namespace bagua {

/// \brief Pooling applied over the rows of one embedding bag.
enum class Pooling { kSum, kMean };

/// \brief Pools `count` gathered rows of width `dim` into `out` in
/// ascending row order (kMean divides the kSum result by count).
///
/// This is THE pooling kernel: both the local EmbeddingBag layer and the
/// sharded serving path (src/serve/) feed their gathered rows through it,
/// so a request served from shards + cache is bitwise identical to the
/// same bag looked up in a local table. Empty bags pool to zeros.
void PoolRows(const float* rows, size_t count, size_t dim, Pooling pooling,
              float* out);

/// \brief Fills one embedding row from the pair (seed, global row id).
///
/// Each row gets its own Rng stream (seeded by MixSeed(seed, row)), so the
/// values a row holds depend only on its *global* id — never on which
/// shard owns it or how many shards there are. The sharded EmbeddingStore
/// (src/ps/embedding_store.h) initializes through this same helper, which
/// is what makes its gathers bitwise comparable against a local table at
/// any shard count.
void InitEmbeddingRow(uint64_t seed, uint64_t row, size_t dim, float* out);

/// \brief EmbeddingBag: sparse lookup + pooling, the DLRM sparse feature
/// layer (one instance per categorical table).
///
/// Layer::Forward interprets the input as [bags, slots_per_bag] float-
/// encoded row ids (fixed multi-hot arity, DLRM-style) and emits
/// [bags, dim] pooled vectors. ForwardIndices exposes the CSR-style
/// variable-arity form (indices + bag offsets) used by the serving path.
/// Backward scatter-adds d(out) into the table gradient in bag-then-slot
/// order, so gradients are deterministic for any duplicate-id pattern.
class EmbeddingBag : public Layer {
 public:
  /// `row_base` is this table's offset in the merged global row space
  /// (table t of a DLRM occupies [t*rows, (t+1)*rows)); local row r is
  /// initialized as global row row_base + r.
  EmbeddingBag(std::string name, size_t rows, size_t dim,
               size_t slots_per_bag, Pooling pooling = Pooling::kSum,
               uint64_t row_base = 0);

  const std::string& name() const override { return name_; }
  Status Forward(const Tensor& in, Tensor* out) override;
  Status Backward(const Tensor& grad_out, Tensor* grad_in) override;
  std::vector<Param> params() override;

  /// Draws a fresh base seed from `rng` and delegates to InitTable.
  void InitParams(Rng* rng) override;

  /// Initializes every row via InitEmbeddingRow(seed, row_base + r).
  void InitTable(uint64_t seed);

  /// CSR-style forward: bag b pools rows indices[offsets[b] ..
  /// offsets[b+1]) in index order; out is [offsets.size()-1, dim].
  Status ForwardIndices(const std::vector<uint32_t>& indices,
                        const std::vector<uint32_t>& offsets, Tensor* out);

  size_t rows() const { return rows_; }
  size_t dim() const { return dim_; }
  size_t slots_per_bag() const { return slots_; }
  const Tensor& table() const { return table_; }

 private:
  std::string name_;
  size_t rows_;
  size_t dim_;
  size_t slots_;
  Pooling pooling_;
  uint64_t row_base_;
  Tensor table_, gtable_;
  Tensor input_;  // cached forward ids for Backward
};

/// \brief Deterministic skewed categorical id sampler.
///
/// Ids follow an approximate power law over [0, rows): a handful of hot
/// rows absorb most lookups, the shape production embedding access takes
/// (and what makes the serving front end's LRU hot-row cache earn its
/// keep). `skew` >= 1; higher is hotter; 1.0 is uniform.
uint32_t SampleSkewedId(Rng* rng, size_t rows, double skew);

/// \brief DLRM configuration: categorical tables + the two dense MLPs.
struct DlrmConfig {
  size_t num_tables = 4;
  size_t rows_per_table = 1024;
  size_t dim = 16;           ///< embedding (and bottom-MLP output) width
  size_t dense_dim = 8;      ///< continuous feature input width
  size_t slots_per_bag = 4;  ///< multi-hot lookups per table per sample
  std::vector<size_t> bottom_hidden = {16};  ///< dense_dim -> ... -> dim
  std::vector<size_t> top_hidden = {32};     ///< concat -> ... -> 1
  Pooling pooling = Pooling::kSum;
  double id_skew = 4.0;   ///< SampleSkewedId exponent for synthetic data
  uint64_t seed = 1234;

  size_t total_rows() const { return num_tables * rows_per_table; }
  /// Global row id of (table, local row) in the merged row space.
  uint64_t GlobalRow(size_t table, uint32_t row) const {
    return static_cast<uint64_t>(table) * rows_per_table + row;
  }
};

/// \brief DLRM forward model: bottom MLP on dense features, EmbeddingBag
/// per categorical table, feature concat, top MLP to one logit.
///
/// Inference-only on the dense side (the serving front end replays read
/// traffic); the embedding tables still expose Backward/params for the
/// sparse scatter-update path. All parameters are derived from
/// config.seed, so every replica — and the sharded serving store — agrees
/// on them without communication.
class DlrmModel {
 public:
  explicit DlrmModel(const DlrmConfig& config);

  /// dense: [batch, dense_dim]; ids: [batch, num_tables * slots_per_bag]
  /// float-encoded local row ids, table-major per sample; out: [batch]
  /// logits.
  Status Forward(const Tensor& dense, const Tensor& ids, Tensor* out);

  /// Forward where the pooled embedding vectors are supplied by the
  /// caller ([batch, num_tables * dim], table-major) instead of looked up
  /// locally — the serving path, which pools rows gathered from shards.
  /// Bitwise identical to Forward given PoolRows-pooled inputs.
  Status ForwardPooled(const Tensor& dense, const Tensor& pooled,
                       Tensor* out);

  /// Draws one sample's synthetic features: dense_dim uniform floats and
  /// num_tables * slots_per_bag skewed ids, from the stream for
  /// (config.seed, sample_index). Identical on every replica.
  void SampleRequest(uint64_t sample_index, std::vector<float>* dense,
                     std::vector<uint32_t>* ids) const;

  const DlrmConfig& config() const { return config_; }
  EmbeddingBag* table(size_t t) { return tables_[t].get(); }

 private:
  DlrmConfig config_;
  std::vector<std::unique_ptr<DenseLayer>> bottom_;
  std::vector<std::unique_ptr<EmbeddingBag>> tables_;
  std::vector<std::unique_ptr<DenseLayer>> top_;
};

}  // namespace bagua

#endif  // BAGUA_MODEL_EMBEDDING_H_
