#ifndef BAGUA_MODEL_NET_H_
#define BAGUA_MODEL_NET_H_

#include <functional>
#include <memory>
#include <vector>

#include "model/layer.h"

namespace bagua {

/// \brief A sequential network — the "neural network specified as a graph"
/// the end-user hands to BAGUA (Listing 1's MyNet).
///
/// Backward() invokes an optional per-layer hook as each layer's gradients
/// become ready, in reverse layer order — the exact integration point the
/// BAGUA runtime uses to trigger communication functions (§3.1: "registering
/// this communication function as hooks ... after the backward computation
/// of each layer").
class Net {
 public:
  Net() = default;

  /// Appends a layer; returns *this for builder-style chaining.
  Net& Add(std::unique_ptr<Layer> layer);

  /// Convenience builder: an MLP with the given dims and hidden activation.
  static Net Mlp(const std::vector<size_t>& dims,
                 Activation hidden_act = Activation::kRelu);

  size_t num_layers() const { return layers_.size(); }
  Layer* layer(size_t i) { return layers_[i].get(); }

  /// All parameters, layer-major (layer 0 first).
  std::vector<Param> params();

  /// Total trainable elements.
  size_t NumParams();

  /// Deterministic initialization — every worker seeds identically so that
  /// model replicas start in sync.
  void InitParams(uint64_t seed);

  /// Zeroes all gradients.
  void ZeroGrad();

  Status Forward(const Tensor& in, Tensor* out);

  /// Backpropagates from d(loss)/d(out). `layer_hook(i)` fires right after
  /// layer i's gradients are computed (i descending).
  Status Backward(const Tensor& grad_out,
                  const std::function<void(size_t)>& layer_hook = nullptr);

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace bagua

#endif  // BAGUA_MODEL_NET_H_
