#include "model/net.h"

#include "base/strings.h"

namespace bagua {

Net& Net::Add(std::unique_ptr<Layer> layer) {
  layers_.push_back(std::move(layer));
  return *this;
}

Net Net::Mlp(const std::vector<size_t>& dims, Activation hidden_act) {
  Net net;
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    const bool last = (i + 2 == dims.size());
    net.Add(std::make_unique<DenseLayer>(StrFormat("fc%zu", i), dims[i],
                                         dims[i + 1],
                                         last ? Activation::kNone : hidden_act));
  }
  return net;
}

std::vector<Param> Net::params() {
  std::vector<Param> all;
  for (auto& layer : layers_) {
    for (Param& p : layer->params()) all.push_back(p);
  }
  return all;
}

size_t Net::NumParams() {
  size_t n = 0;
  for (const Param& p : params()) n += p.value->numel();
  return n;
}

void Net::InitParams(uint64_t seed) {
  Rng rng(seed);
  for (auto& layer : layers_) layer->InitParams(&rng);
}

void Net::ZeroGrad() {
  for (const Param& p : params()) p.grad->Fill(0.0f);
}

Status Net::Forward(const Tensor& in, Tensor* out) {
  Tensor cur = in;
  Tensor next;
  for (auto& layer : layers_) {
    RETURN_IF_ERROR(layer->Forward(cur, &next));
    cur = next;
  }
  *out = cur;
  return Status::OK();
}

Status Net::Backward(const Tensor& grad_out,
                     const std::function<void(size_t)>& layer_hook) {
  Tensor g = grad_out;
  Tensor g_in;
  for (size_t i = layers_.size(); i > 0; --i) {
    const size_t idx = i - 1;
    Tensor* gin = (idx == 0) ? nullptr : &g_in;
    RETURN_IF_ERROR(layers_[idx]->Backward(g, gin));
    if (layer_hook) layer_hook(idx);
    if (idx > 0) g = g_in;
  }
  return Status::OK();
}

}  // namespace bagua
