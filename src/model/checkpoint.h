#ifndef BAGUA_MODEL_CHECKPOINT_H_
#define BAGUA_MODEL_CHECKPOINT_H_

#include <string>

#include "model/net.h"

namespace bagua {

/// Binary checkpointing of a Net's parameters.
///
/// Format: magic "BGCK" + u32 version + u64 param-tensor count, then per
/// tensor: u32 name length, name bytes, u64 numel, numel floats. Loading
/// validates the structure against the target net (names and sizes must
/// match exactly), so loading into the wrong architecture fails cleanly
/// instead of silently corrupting weights.

/// \brief Writes `net`'s parameter values to `path` (overwrites).
Status SaveCheckpoint(Net* net, const std::string& path);

/// \brief Restores parameter values from `path` into `net`.
Status LoadCheckpoint(Net* net, const std::string& path);

}  // namespace bagua

#endif  // BAGUA_MODEL_CHECKPOINT_H_
