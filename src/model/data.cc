#include "model/data.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "base/logging.h"
#include "base/strings.h"

namespace bagua {

SyntheticClassification::SyntheticClassification(const Options& opts)
    : opts_(opts) {
  BAGUA_CHECK_GT(opts.num_samples, 0u);
  BAGUA_CHECK_GT(opts.dim, 0u);
  BAGUA_CHECK_GE(opts.classes, 2u);
  Rng rng(opts.seed);

  // Random cluster centers.
  std::vector<float> centers(opts.classes * opts.dim);
  for (auto& c : centers) c = static_cast<float>(rng.Normal() * 2.0);

  // Fixed random rotation-ish mixing matrix for a mild nonlinearity below.
  std::vector<float> mix(opts.dim * opts.dim);
  for (auto& m : mix) {
    m = static_cast<float>(rng.Normal() / std::sqrt(double(opts.dim)));
  }

  features_.resize(opts.num_samples * opts.dim);
  labels_.resize(opts.num_samples);
  std::vector<float> raw(opts.dim);
  for (size_t s = 0; s < opts.num_samples; ++s) {
    const size_t cls = rng.UniformInt(opts.classes);
    labels_[s] = static_cast<float>(cls);
    const float* center = centers.data() + cls * opts.dim;
    for (size_t d = 0; d < opts.dim; ++d) {
      raw[d] = center[d] +
               static_cast<float>(rng.Normal() * opts.cluster_spread);
    }
    // tanh of a random mix — keeps clusters separable but not linearly.
    float* out = features_.data() + s * opts.dim;
    for (size_t d = 0; d < opts.dim; ++d) {
      double acc = 0.0;
      for (size_t k = 0; k < opts.dim; ++k) {
        acc += mix[d * opts.dim + k] * raw[k];
      }
      out[d] = std::tanh(static_cast<float>(acc)) + 0.1f * raw[d];
    }
    if (rng.Bernoulli(opts.label_noise)) {
      labels_[s] = static_cast<float>(rng.UniformInt(opts.classes));
    }
  }
}

size_t SyntheticClassification::ShardSize(int rank, int world) const {
  BAGUA_CHECK_GE(rank, 0);
  BAGUA_CHECK_LT(rank, world);
  // Strided sharding: worker r owns samples r, r+world, ...
  return (opts_.num_samples + static_cast<size_t>(world) -
          static_cast<size_t>(rank) - 1) /
         static_cast<size_t>(world);
}

size_t SyntheticClassification::BatchesPerEpoch(int rank, int world,
                                                size_t batch_size) const {
  return ShardSize(rank, world) / batch_size;
}

Status SyntheticClassification::GetShardBatch(int rank, int world,
                                              size_t epoch,
                                              size_t batch_index,
                                              size_t batch_size, Tensor* x,
                                              Tensor* y) const {
  if (rank < 0 || rank >= world) {
    return Status::InvalidArgument("bad rank/world");
  }
  const size_t shard = ShardSize(rank, world);
  if ((batch_index + 1) * batch_size > shard) {
    return Status::OutOfRange(
        StrFormat("batch %zu x %zu exceeds shard %zu", batch_index,
                  batch_size, shard));
  }
  // Per-(epoch, rank) shuffle of the shard-local indices.
  Rng rng(MixSeed(opts_.seed, MixSeed(epoch + 1, rank + 1)));
  std::vector<uint32_t> order(shard);
  rng.Permutation(shard, order.data());

  *x = Tensor::Zeros({batch_size, opts_.dim}, "batch.x");
  *y = Tensor::Zeros({batch_size}, "batch.y");
  for (size_t b = 0; b < batch_size; ++b) {
    const size_t local = order[batch_index * batch_size + b];
    const size_t global = static_cast<size_t>(rank) +
                          local * static_cast<size_t>(world);
    std::memcpy(x->data() + b * opts_.dim,
                features_.data() + global * opts_.dim,
                opts_.dim * sizeof(float));
    (*y)[b] = labels_[global];
  }
  return Status::OK();
}

FederatedView::FederatedView(const SyntheticClassification* data,
                             const FederatedShardOptions& opts)
    : data_(data), opts_(opts) {
  BAGUA_CHECK(data != nullptr);
  BAGUA_CHECK_GT(opts.num_clients, 0);
  BAGUA_CHECK_GE(opts.skew, 0.0);
  BAGUA_CHECK_LE(opts.skew, 1.0);
  client_samples_.resize(opts.num_clients);
  const size_t classes = data->classes();
  // Clients preferring class y are those with client % classes == y; under
  // full skew a sample may only land on one of them.
  const size_t preferring =
      (static_cast<size_t>(opts.num_clients) + classes - 1) / classes;
  Rng rng(MixSeed(opts.seed, 0xFEDE7A7Eull));
  for (size_t s = 0; s < data->size(); ++s) {
    const size_t y = data->label(s);
    size_t client;
    if (rng.Bernoulli(opts.skew)) {
      const size_t slot = rng.UniformInt(preferring);
      client = y + slot * classes;
      if (client >= static_cast<size_t>(opts.num_clients)) client = y;
    } else {
      client = rng.UniformInt(opts.num_clients);
    }
    client_samples_[client].push_back(static_cast<uint32_t>(s));
  }
}

size_t FederatedView::ClientSize(int client) const {
  BAGUA_CHECK_GE(client, 0);
  BAGUA_CHECK_LT(client, opts_.num_clients);
  return client_samples_[client].size();
}

Status FederatedView::GetClientBatch(int client, uint64_t round, size_t step,
                                     size_t batch_size, Tensor* x,
                                     Tensor* y) const {
  if (client < 0 || client >= opts_.num_clients) {
    return Status::InvalidArgument("bad client id");
  }
  const std::vector<uint32_t>& shard = client_samples_[client];
  if (shard.empty()) {
    return Status::OutOfRange(
        StrFormat("client %d holds no samples", client));
  }
  if (batch_size == 0) {
    return Status::InvalidArgument("batch_size must be positive");
  }
  // Per-(client, round) shuffle of the shard-local indices; steps walk the
  // shuffled shard and wrap around.
  Rng rng(MixSeed(opts_.seed, MixSeed(round + 1, client + 1)));
  std::vector<uint32_t> order(shard.size());
  rng.Permutation(shard.size(), order.data());

  const size_t dim = data_->dim();
  *x = Tensor::Zeros({batch_size, dim}, "fl.batch.x");
  *y = Tensor::Zeros({batch_size}, "fl.batch.y");
  for (size_t b = 0; b < batch_size; ++b) {
    const size_t local = order[(step * batch_size + b) % shard.size()];
    const size_t global = shard[local];
    std::memcpy(x->data() + b * dim, data_->feature(global),
                dim * sizeof(float));
    (*y)[b] = static_cast<float>(data_->label(global));
  }
  return Status::OK();
}

double FederatedView::ClientLabelConcentration(int client) const {
  BAGUA_CHECK_GE(client, 0);
  BAGUA_CHECK_LT(client, opts_.num_clients);
  const std::vector<uint32_t>& shard = client_samples_[client];
  if (shard.empty()) return 0.0;
  std::vector<size_t> counts(data_->classes(), 0);
  for (const uint32_t s : shard) ++counts[data_->label(s)];
  size_t top = 0;
  for (const size_t c : counts) top = std::max(top, c);
  return static_cast<double>(top) / static_cast<double>(shard.size());
}

Status SyntheticClassification::GetAll(Tensor* x, Tensor* y) const {
  *x = Tensor::Zeros({opts_.num_samples, opts_.dim}, "all.x");
  *y = Tensor::Zeros({opts_.num_samples}, "all.y");
  std::memcpy(x->data(), features_.data(), features_.size() * sizeof(float));
  std::memcpy(y->data(), labels_.data(), labels_.size() * sizeof(float));
  return Status::OK();
}

}  // namespace bagua
