#ifndef BAGUA_MODEL_DATA_H_
#define BAGUA_MODEL_DATA_H_

#include <cstdint>
#include <vector>

#include "base/rng.h"
#include "base/status.h"
#include "tensor/tensor.h"

namespace bagua {

/// \brief Seeded synthetic classification dataset — the stand-in for the
/// paper's ImageNet/SQuAD/AISHELL-2/Kwai workloads (see DESIGN.md
/// substitutions).
///
/// Samples are drawn from `classes` Gaussian clusters whose centers come
/// from a random teacher, passed through a fixed random nonlinear feature
/// map so the task is not linearly separable, plus label noise. Every
/// worker constructs the same dataset from the seed and reads its own
/// shard, mirroring data-parallel partitioning.
class SyntheticClassification {
 public:
  struct Options {
    size_t num_samples = 4096;
    size_t dim = 32;
    size_t classes = 8;
    double label_noise = 0.02;  ///< fraction of labels randomized
    double cluster_spread = 0.8;
    uint64_t seed = 1234;
  };

  explicit SyntheticClassification(const Options& opts);

  size_t size() const { return opts_.num_samples; }
  size_t dim() const { return opts_.dim; }
  size_t classes() const { return opts_.classes; }

  /// Number of samples in worker `rank`'s shard of `world` workers.
  size_t ShardSize(int rank, int world) const;

  /// Fills `x` [batch, dim] and `y` [batch] with the shard's samples for
  /// `epoch`'s batch `batch_index` (batches shuffled per epoch, identical
  /// shuffles derived from the seed).
  Status GetShardBatch(int rank, int world, size_t epoch, size_t batch_index,
                       size_t batch_size, Tensor* x, Tensor* y) const;

  /// Batches per epoch in one worker's shard.
  size_t BatchesPerEpoch(int rank, int world, size_t batch_size) const;

  /// Whole-dataset accessors for evaluation.
  Status GetAll(Tensor* x, Tensor* y) const;

  /// Raw sample accessors (federated views address samples directly).
  const float* feature(size_t i) const { return features_.data() + i * dim(); }
  size_t label(size_t i) const { return static_cast<size_t>(labels_[i]); }

 private:
  Options opts_;
  std::vector<float> features_;  // [num_samples, dim]
  std::vector<float> labels_;    // [num_samples]
};

/// \brief Per-client partition knobs for federated training (src/fl/).
///
/// `skew` dials client data heterogeneity from 0 (IID: every sample lands
/// on a uniformly random client) to 1 (fully label-skewed: every sample
/// lands on a client whose preferred class — client % classes — matches
/// its label). The assignment is a pure function of (data seed, shard
/// seed), so every run partitions identically.
struct FederatedShardOptions {
  int num_clients = 64;
  double skew = 0.5;
  uint64_t seed = 99;
};

/// \brief Client-indexed view over a SyntheticClassification dataset — the
/// federated analogue of the rank-strided ShardSize/GetShardBatch pair.
///
/// Clients own disjoint sample lists (possibly empty under heavy skew);
/// batches are drawn from a per-(client, round) shuffle and wrap around
/// the client's shard, so small shards still serve any number of local
/// steps deterministically.
class FederatedView {
 public:
  FederatedView(const SyntheticClassification* data,
                const FederatedShardOptions& opts);

  int num_clients() const { return opts_.num_clients; }
  size_t ClientSize(int client) const;

  /// Fills `x` [batch, dim] and `y` [batch] with client-local samples for
  /// local step `step` of `round` (per-(client, round) shuffle, wrapping).
  /// Fails on empty shards — callers skip those clients.
  Status GetClientBatch(int client, uint64_t round, size_t step,
                        size_t batch_size, Tensor* x, Tensor* y) const;

  /// Fraction of the client's samples carrying its most common label — 1/C
  ///-ish when IID, → 1 under full skew (heterogeneity diagnostic).
  double ClientLabelConcentration(int client) const;

 private:
  const SyntheticClassification* data_;
  FederatedShardOptions opts_;
  std::vector<std::vector<uint32_t>> client_samples_;
};

}  // namespace bagua

#endif  // BAGUA_MODEL_DATA_H_
