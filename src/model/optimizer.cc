#include "model/optimizer.h"

#include <cmath>

#include "base/arena.h"
#include "base/logging.h"
#include "base/parallel.h"
#include "base/strings.h"
#include "tensor/ops.h"

namespace bagua {

double ClipGradNorm(float* grad, size_t n, double max_norm) {
  // Fixed-tree Dot + blocked Scale: deterministic at any intra-op thread
  // count (see tensor/ops.h).
  const double norm = std::sqrt(Dot(grad, grad, n));
  if (norm > max_norm && norm > 0.0) {
    Scale(grad, static_cast<float>(max_norm / norm), n);
  }
  return norm;
}

SgdOptimizer::SgdOptimizer(double lr, double momentum, double weight_decay)
    : lr_(lr), momentum_(momentum), weight_decay_(weight_decay) {}

Status SgdOptimizer::Step(size_t slot, float* param, const float* grad,
                          size_t n) {
  if (weight_decay_ > 0.0) {
    // Decoupled decay (applied to the parameter, not folded into momentum).
    Scale(param, static_cast<float>(1.0 - lr_ * weight_decay_), n);
  }
  if (momentum_ <= 0.0) {
    Axpy(-static_cast<float>(lr_), grad, param, n);
    return Status::OK();
  }
  if (slot >= velocity_.size()) velocity_.resize(slot + 1);
  auto& v = velocity_[slot];
  if (v.empty()) {
    v.assign(n, 0.0f);
  } else if (v.size() != n) {
    return Status::InvalidArgument(
        StrFormat("sgd slot %zu size changed: %zu -> %zu", slot, v.size(), n));
  }
  const float mu = static_cast<float>(momentum_);
  const float lr = static_cast<float>(lr_);
  // Each element updates independently, so fixed-grain chunks over the
  // intra-op pool leave the result bit-identical at any thread count.
  float* vel = v.data();
  IntraOpFor(n, kElementwiseGrain, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      vel[i] = mu * vel[i] + grad[i];
      param[i] -= lr * vel[i];
    }
  });
  return Status::OK();
}

AdamOptimizer::AdamOptimizer(double lr, double beta1, double beta2, double eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

Status AdamOptimizer::Step(size_t slot, float* param, const float* grad,
                           size_t n) {
  if (slot >= states_.size()) states_.resize(slot + 1);
  State& s = states_[slot];
  if (s.m.empty()) {
    s.m.assign(n, 0.0f);
    s.v.assign(n, 0.0f);
  } else if (s.m.size() != n) {
    return Status::InvalidArgument(
        StrFormat("adam slot %zu size changed: %zu -> %zu", slot, s.m.size(),
                  n));
  }
  ++s.t;
  const double b1 = beta1_, b2 = beta2_;
  const double bias1 = 1.0 - std::pow(b1, static_cast<double>(s.t));
  const double bias2 = 1.0 - std::pow(b2, static_cast<double>(s.t));
  float* sm = s.m.data();
  float* sv = s.v.data();
  const bool frozen = variance_frozen_;
  const double lr = lr_, eps = eps_;
  IntraOpFor(n, kElementwiseGrain, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      sm[i] = static_cast<float>(b1 * sm[i] + (1.0 - b1) * grad[i]);
      if (!frozen) {
        sv[i] = static_cast<float>(b2 * sv[i] +
                                   (1.0 - b2) * grad[i] * grad[i]);
      }
      const double mhat = sm[i] / bias1;
      const double vhat = sv[i] / (frozen ? 1.0 : bias2);
      param[i] -= static_cast<float>(lr * mhat / (std::sqrt(vhat) + eps));
    }
  });
  return Status::OK();
}

const std::vector<float>& AdamOptimizer::variance(size_t slot) const {
  static const std::vector<float> kEmpty;
  if (slot >= states_.size()) return kEmpty;
  return states_[slot].v;
}

const std::vector<float>& AdamOptimizer::momentum(size_t slot) const {
  static const std::vector<float> kEmpty;
  if (slot >= states_.size()) return kEmpty;
  return states_[slot].m;
}

int64_t AdamOptimizer::step_count(size_t slot) const {
  if (slot >= states_.size()) return 0;
  return states_[slot].t;
}

MixedPrecisionOptimizer::MixedPrecisionOptimizer(
    std::unique_ptr<Optimizer> inner, WireDtype dtype)
    : inner_(std::move(inner)), dtype_(dtype) {
  BAGUA_CHECK(dtype == WireDtype::kBf16 || dtype == WireDtype::kFp16);
}

Status MixedPrecisionOptimizer::Step(size_t slot, uint16_t* param,
                                     const uint16_t* grad, size_t n) {
  if (slot >= master_.size()) master_.resize(slot + 1);
  auto& master = master_[slot];
  if (master.empty()) {
    // First sight of this slot: the 16-bit params ARE the model; widen
    // them once and update in fp32 ever after.
    master.resize(n);
    if (dtype_ == WireDtype::kBf16) {
      Bf16ToFloatN(param, master.data(), n);
    } else {
      HalfToFloatN(param, master.data(), n);
    }
  } else if (master.size() != n) {
    return Status::InvalidArgument(
        StrFormat("mixed-precision slot %zu size changed: %zu -> %zu", slot,
                  master.size(), n));
  }
  // fp32 gradient staging from the tensor arena: steady state recycles the
  // same block, so the whole-step allocation gate stays green.
  static Arena* arena = &MemoryRegistry::Global().ArenaFor("tensor");
  ArenaScratch scratch(arena, n * sizeof(float));
  float* grad32 = scratch.floats();
  if (dtype_ == WireDtype::kBf16) {
    Bf16ToFloatN(grad, grad32, n);
  } else {
    HalfToFloatN(grad, grad32, n);
  }
  RETURN_IF_ERROR(inner_->Step(slot, master.data(), grad32, n));
  if (dtype_ == WireDtype::kBf16) {
    FloatToBf16N(master.data(), param, n);
  } else {
    FloatToHalfN(master.data(), param, n);
  }
  return Status::OK();
}

const std::vector<float>& MixedPrecisionOptimizer::master(size_t slot) const {
  static const std::vector<float> kEmpty;
  if (slot >= master_.size()) return kEmpty;
  return master_[slot];
}

}  // namespace bagua
