#include "model/optimizer.h"

#include <cmath>

#include "base/strings.h"

namespace bagua {

double ClipGradNorm(float* grad, size_t n, double max_norm) {
  double sq = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sq += static_cast<double>(grad[i]) * grad[i];
  }
  const double norm = std::sqrt(sq);
  if (norm > max_norm && norm > 0.0) {
    const float scale = static_cast<float>(max_norm / norm);
    for (size_t i = 0; i < n; ++i) grad[i] *= scale;
  }
  return norm;
}

SgdOptimizer::SgdOptimizer(double lr, double momentum, double weight_decay)
    : lr_(lr), momentum_(momentum), weight_decay_(weight_decay) {}

Status SgdOptimizer::Step(size_t slot, float* param, const float* grad,
                          size_t n) {
  if (weight_decay_ > 0.0) {
    // Decoupled decay (applied to the parameter, not folded into momentum).
    const float shrink = static_cast<float>(1.0 - lr_ * weight_decay_);
    for (size_t i = 0; i < n; ++i) param[i] *= shrink;
  }
  if (momentum_ <= 0.0) {
    for (size_t i = 0; i < n; ++i) {
      param[i] -= static_cast<float>(lr_) * grad[i];
    }
    return Status::OK();
  }
  if (slot >= velocity_.size()) velocity_.resize(slot + 1);
  auto& v = velocity_[slot];
  if (v.empty()) {
    v.assign(n, 0.0f);
  } else if (v.size() != n) {
    return Status::InvalidArgument(
        StrFormat("sgd slot %zu size changed: %zu -> %zu", slot, v.size(), n));
  }
  const float mu = static_cast<float>(momentum_);
  const float lr = static_cast<float>(lr_);
  for (size_t i = 0; i < n; ++i) {
    v[i] = mu * v[i] + grad[i];
    param[i] -= lr * v[i];
  }
  return Status::OK();
}

AdamOptimizer::AdamOptimizer(double lr, double beta1, double beta2, double eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

Status AdamOptimizer::Step(size_t slot, float* param, const float* grad,
                           size_t n) {
  if (slot >= states_.size()) states_.resize(slot + 1);
  State& s = states_[slot];
  if (s.m.empty()) {
    s.m.assign(n, 0.0f);
    s.v.assign(n, 0.0f);
  } else if (s.m.size() != n) {
    return Status::InvalidArgument(
        StrFormat("adam slot %zu size changed: %zu -> %zu", slot, s.m.size(),
                  n));
  }
  ++s.t;
  const double b1 = beta1_, b2 = beta2_;
  const double bias1 = 1.0 - std::pow(b1, static_cast<double>(s.t));
  const double bias2 = 1.0 - std::pow(b2, static_cast<double>(s.t));
  for (size_t i = 0; i < n; ++i) {
    s.m[i] = static_cast<float>(b1 * s.m[i] + (1.0 - b1) * grad[i]);
    if (!variance_frozen_) {
      s.v[i] = static_cast<float>(b2 * s.v[i] +
                                  (1.0 - b2) * grad[i] * grad[i]);
    }
    const double mhat = s.m[i] / bias1;
    const double vhat = s.v[i] / (variance_frozen_ ? 1.0 : bias2);
    param[i] -= static_cast<float>(lr_ * mhat / (std::sqrt(vhat) + eps_));
  }
  return Status::OK();
}

const std::vector<float>& AdamOptimizer::variance(size_t slot) const {
  static const std::vector<float> kEmpty;
  if (slot >= states_.size()) return kEmpty;
  return states_[slot].v;
}

const std::vector<float>& AdamOptimizer::momentum(size_t slot) const {
  static const std::vector<float> kEmpty;
  if (slot >= states_.size()) return kEmpty;
  return states_[slot].m;
}

int64_t AdamOptimizer::step_count(size_t slot) const {
  if (slot >= states_.size()) return 0;
  return states_[slot].t;
}

}  // namespace bagua
