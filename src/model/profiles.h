#ifndef BAGUA_MODEL_PROFILES_H_
#define BAGUA_MODEL_PROFILES_H_

#include <cstddef>
#include <string>
#include <vector>

namespace bagua {

/// \brief One block of a profiled model: a communication/compute unit of
/// the timing simulation.
///
/// `flops` is the per-sample forward+backward cost of the block;
/// `num_tensors` is how many separate parameter tensors the block holds
/// (what per-tensor kernel overhead and the F ablation operate on).
struct BlockProfile {
  std::string name;
  size_t params = 0;     ///< trainable elements
  double flops = 0.0;    ///< fwd+bwd FLOPs per sample
  int num_tensors = 2;   ///< parameter tensors in this block
};

/// \brief Per-model training configuration used by the epoch-time harness.
///
/// `efficiency` is the achieved fraction of device peak for this model's
/// kernels — the per-model calibration constant of DESIGN.md §4.3 (conv
/// nets run hot, small-batch attention runs cold on fp32 V100s).
struct TrainingConfig {
  size_t samples_per_epoch = 0;
  size_t batch_per_device = 32;
  double efficiency = 0.45;
  bool uses_adam = false;  ///< update cost: Adam vs momentum-SGD
};

/// \brief Static profile of a benchmark model: per-block parameter and FLOP
/// budgets matching the paper's Table 2, listed front-to-back.
struct ModelProfile {
  std::string name;
  std::vector<BlockProfile> blocks;
  TrainingConfig train;

  size_t TotalParams() const;
  double TotalFlops() const;
  int TotalTensors() const;
  double GradientBytes() const { return TotalParams() * 4.0; }
  size_t IterationsPerEpoch(int world_size) const;

  /// The paper's five workloads (Table 2).
  static ModelProfile Vgg16();
  static ModelProfile BertLarge();
  static ModelProfile BertBase();
  static ModelProfile Transformer();
  static ModelProfile LstmAlexNet();
  static std::vector<ModelProfile> AllPaperModels();

  /// DLRM-style recommender (sharded embedding serving workload): embedding
  /// tables dominate params, MLPs dominate FLOPs. Not one of the paper's
  /// Table 2 training workloads — used by the serving front end and its
  /// offline pricing — so it is not in AllPaperModels().
  static ModelProfile Dlrm();

  /// Looks a profile up by name ("vgg16", "bert-large", "bert-base",
  /// "transformer", "lstm-alexnet", "dlrm"); aborts on unknown names.
  static ModelProfile ByName(const std::string& name);
};

}  // namespace bagua

#endif  // BAGUA_MODEL_PROFILES_H_
