#include "model/embedding.h"

#include <cmath>
#include <cstring>

#include "base/logging.h"
#include "base/rng.h"
#include "base/strings.h"
#include "tensor/ops.h"

namespace bagua {

void PoolRows(const float* rows, size_t count, size_t dim, Pooling pooling,
              float* out) {
  std::memset(out, 0, dim * sizeof(float));
  for (size_t r = 0; r < count; ++r) {
    for (size_t d = 0; d < dim; ++d) out[d] += rows[r * dim + d];
  }
  if (pooling == Pooling::kMean && count > 0) {
    const float inv = 1.0f / static_cast<float>(count);
    for (size_t d = 0; d < dim; ++d) out[d] *= inv;
  }
}

void InitEmbeddingRow(uint64_t seed, uint64_t row, size_t dim, float* out) {
  Rng rng(MixSeed(seed, row));
  for (size_t d = 0; d < dim; ++d) {
    out[d] = static_cast<float>(rng.Normal() * 0.05);
  }
}

// --------------------------------------------------------- EmbeddingBag

EmbeddingBag::EmbeddingBag(std::string name, size_t rows, size_t dim,
                           size_t slots_per_bag, Pooling pooling,
                           uint64_t row_base)
    : name_(std::move(name)), rows_(rows), dim_(dim), slots_(slots_per_bag),
      pooling_(pooling), row_base_(row_base) {
  table_ = Tensor::Zeros({rows, dim}, name_ + ".table");
  gtable_ = Tensor::Zeros({rows, dim}, name_ + ".table.grad");
}

void EmbeddingBag::InitParams(Rng* rng) { InitTable(rng->Next()); }

void EmbeddingBag::InitTable(uint64_t seed) {
  for (size_t r = 0; r < rows_; ++r) {
    InitEmbeddingRow(seed, row_base_ + r, dim_, table_.data() + r * dim_);
  }
}

Status EmbeddingBag::Forward(const Tensor& in, Tensor* out) {
  if (slots_ == 0 || in.numel() % slots_ != 0) {
    return Status::InvalidArgument(
        StrFormat("%s: %zu ids not a multiple of %zu slots", name_.c_str(),
                  in.numel(), slots_));
  }
  const size_t bags = in.numel() / slots_;
  input_ = in.Clone();
  *out = Tensor::Zeros({bags, dim_}, name_ + ".out");
  std::vector<float> gathered(slots_ * dim_);
  for (size_t b = 0; b < bags; ++b) {
    for (size_t s = 0; s < slots_; ++s) {
      const long id = std::lround(in[b * slots_ + s]);
      if (id < 0 || static_cast<size_t>(id) >= rows_) {
        return Status::InvalidArgument(
            StrFormat("%s: row id %ld out of table %zu", name_.c_str(), id,
                      rows_));
      }
      std::memcpy(gathered.data() + s * dim_, table_.data() + id * dim_,
                  dim_ * sizeof(float));
    }
    PoolRows(gathered.data(), slots_, dim_, pooling_,
             out->data() + b * dim_);
  }
  return Status::OK();
}

Status EmbeddingBag::ForwardIndices(const std::vector<uint32_t>& indices,
                                    const std::vector<uint32_t>& offsets,
                                    Tensor* out) {
  if (offsets.empty() || offsets.front() != 0 ||
      offsets.back() != indices.size()) {
    return Status::InvalidArgument(name_ + ": malformed bag offsets");
  }
  const size_t bags = offsets.size() - 1;
  *out = Tensor::Zeros({bags, dim_}, name_ + ".out");
  std::vector<float> gathered;
  for (size_t b = 0; b < bags; ++b) {
    if (offsets[b + 1] < offsets[b]) {
      return Status::InvalidArgument(name_ + ": bag offsets not monotone");
    }
    const size_t count = offsets[b + 1] - offsets[b];
    gathered.resize(count * dim_);
    for (size_t s = 0; s < count; ++s) {
      const uint32_t id = indices[offsets[b] + s];
      if (id >= rows_) {
        return Status::InvalidArgument(
            StrFormat("%s: row id %u out of table %zu", name_.c_str(), id,
                      rows_));
      }
      std::memcpy(gathered.data() + s * dim_, table_.data() + id * dim_,
                  dim_ * sizeof(float));
    }
    PoolRows(gathered.data(), count, dim_, pooling_,
             out->data() + b * dim_);
  }
  return Status::OK();
}

Status EmbeddingBag::Backward(const Tensor& grad_out, Tensor* grad_in) {
  if (!input_.defined()) {
    return Status::FailedPrecondition(name_ + ": Backward before Forward");
  }
  const size_t bags = input_.numel() / slots_;
  if (grad_out.numel() != bags * dim_) {
    return Status::InvalidArgument(name_ + ": grad_out shape mismatch");
  }
  const float scale = pooling_ == Pooling::kMean && slots_ > 0
                          ? 1.0f / static_cast<float>(slots_)
                          : 1.0f;
  for (size_t b = 0; b < bags; ++b) {
    for (size_t s = 0; s < slots_; ++s) {
      const long id = std::lround(input_[b * slots_ + s]);
      Axpy(scale, grad_out.data() + b * dim_, gtable_.data() + id * dim_,
           dim_);
    }
  }
  if (grad_in != nullptr) {
    // Row ids are not differentiable; propagate zeros of the input shape.
    *grad_in = Tensor::Zeros(input_.shape(), name_ + ".gin");
  }
  return Status::OK();
}

std::vector<Param> EmbeddingBag::params() {
  return {{&table_, &gtable_, table_.name()}};
}

// ------------------------------------------------------------ sampling

uint32_t SampleSkewedId(Rng* rng, size_t rows, double skew) {
  BAGUA_CHECK_GT(rows, 0u);
  const double u = std::pow(rng->Uniform(), skew);
  auto id = static_cast<uint64_t>(u * static_cast<double>(rows));
  if (id >= rows) id = rows - 1;
  return static_cast<uint32_t>(id);
}

// ------------------------------------------------------------ DlrmModel

DlrmModel::DlrmModel(const DlrmConfig& config) : config_(config) {
  const DlrmConfig& c = config_;
  BAGUA_CHECK_GT(c.num_tables, 0u);
  BAGUA_CHECK_GT(c.dim, 0u);

  size_t in = c.dense_dim;
  size_t idx = 0;
  for (size_t h : c.bottom_hidden) {
    bottom_.push_back(std::make_unique<DenseLayer>(
        StrFormat("dlrm.bottom%zu", idx++), in, h, Activation::kRelu));
    in = h;
  }
  bottom_.push_back(std::make_unique<DenseLayer>(
      StrFormat("dlrm.bottom%zu", idx), in, c.dim, Activation::kRelu));

  for (size_t t = 0; t < c.num_tables; ++t) {
    tables_.push_back(std::make_unique<EmbeddingBag>(
        StrFormat("dlrm.table%zu", t), c.rows_per_table, c.dim,
        c.slots_per_bag, c.pooling,
        /*row_base=*/static_cast<uint64_t>(t) * c.rows_per_table));
  }

  in = c.dim * (c.num_tables + 1);  // pooled tables + bottom-MLP output
  idx = 0;
  for (size_t h : c.top_hidden) {
    top_.push_back(std::make_unique<DenseLayer>(
        StrFormat("dlrm.top%zu", idx++), in, h, Activation::kRelu));
    in = h;
  }
  top_.push_back(std::make_unique<DenseLayer>(StrFormat("dlrm.top%zu", idx),
                                              in, 1, Activation::kNone));

  // Every parameter tensor gets its own stream keyed off config.seed (the
  // tables via InitTable's per-row streams), so replicas agree bitwise.
  Rng dense_rng(MixSeed(c.seed, 0x0D15EA5Eull));
  for (auto& l : bottom_) l->InitParams(&dense_rng);
  for (auto& l : top_) l->InitParams(&dense_rng);
  for (size_t t = 0; t < c.num_tables; ++t) {
    tables_[t]->InitTable(c.seed);
  }
}

Status DlrmModel::Forward(const Tensor& dense, const Tensor& ids,
                          Tensor* out) {
  const DlrmConfig& c = config_;
  const size_t slots = c.num_tables * c.slots_per_bag;
  if (slots == 0 || ids.numel() % slots != 0) {
    return Status::InvalidArgument("dlrm: ids shape mismatch");
  }
  const size_t batch = ids.numel() / slots;
  Tensor pooled =
      Tensor::Zeros({batch, c.num_tables * c.dim}, "dlrm.pooled");
  Tensor bag_ids = Tensor::Zeros({batch, c.slots_per_bag}, "dlrm.bag_ids");
  Tensor bag_out;
  for (size_t t = 0; t < c.num_tables; ++t) {
    for (size_t b = 0; b < batch; ++b) {
      std::memcpy(bag_ids.data() + b * c.slots_per_bag,
                  ids.data() + b * slots + t * c.slots_per_bag,
                  c.slots_per_bag * sizeof(float));
    }
    RETURN_IF_ERROR(tables_[t]->Forward(bag_ids, &bag_out));
    for (size_t b = 0; b < batch; ++b) {
      std::memcpy(pooled.data() + b * c.num_tables * c.dim + t * c.dim,
                  bag_out.data() + b * c.dim, c.dim * sizeof(float));
    }
  }
  return ForwardPooled(dense, pooled, out);
}

Status DlrmModel::ForwardPooled(const Tensor& dense, const Tensor& pooled,
                                Tensor* out) {
  const DlrmConfig& c = config_;
  if (dense.numel() % c.dense_dim != 0) {
    return Status::InvalidArgument("dlrm: dense shape mismatch");
  }
  const size_t batch = dense.numel() / c.dense_dim;
  if (pooled.numel() != batch * c.num_tables * c.dim) {
    return Status::InvalidArgument("dlrm: pooled shape mismatch");
  }

  Tensor cur = dense.Clone();
  Tensor next;
  for (auto& l : bottom_) {
    RETURN_IF_ERROR(l->Forward(cur, &next));
    cur = std::move(next);
  }

  // Feature concat: [bottom output | pooled table vectors], per sample.
  const size_t feat = c.dim * (c.num_tables + 1);
  Tensor concat = Tensor::Zeros({batch, feat}, "dlrm.concat");
  for (size_t b = 0; b < batch; ++b) {
    std::memcpy(concat.data() + b * feat, cur.data() + b * c.dim,
                c.dim * sizeof(float));
    std::memcpy(concat.data() + b * feat + c.dim,
                pooled.data() + b * c.num_tables * c.dim,
                c.num_tables * c.dim * sizeof(float));
  }

  cur = std::move(concat);
  for (auto& l : top_) {
    RETURN_IF_ERROR(l->Forward(cur, &next));
    cur = std::move(next);
  }
  *out = Tensor::Zeros({batch}, "dlrm.logits");
  std::memcpy(out->data(), cur.data(), batch * sizeof(float));
  return Status::OK();
}

void DlrmModel::SampleRequest(uint64_t sample_index,
                              std::vector<float>* dense,
                              std::vector<uint32_t>* ids) const {
  const DlrmConfig& c = config_;
  Rng rng(MixSeed(c.seed, MixSeed(0xD1E55A0Full, sample_index)));
  dense->resize(c.dense_dim);
  for (size_t d = 0; d < c.dense_dim; ++d) {
    (*dense)[d] = static_cast<float>(rng.Uniform(-1.0, 1.0));
  }
  ids->resize(c.num_tables * c.slots_per_bag);
  for (size_t t = 0; t < c.num_tables; ++t) {
    for (size_t s = 0; s < c.slots_per_bag; ++s) {
      (*ids)[t * c.slots_per_bag + s] =
          SampleSkewedId(&rng, c.rows_per_table, c.id_skew);
    }
  }
}

}  // namespace bagua
