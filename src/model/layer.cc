#include "model/layer.h"

#include <cmath>

#include "base/strings.h"
#include "tensor/ops.h"

namespace bagua {

DenseLayer::DenseLayer(std::string name, size_t in_dim, size_t out_dim,
                       Activation act)
    : name_(std::move(name)), in_dim_(in_dim), out_dim_(out_dim), act_(act) {
  w_ = Tensor::Zeros({in_dim, out_dim}, name_ + ".w");
  b_ = Tensor::Zeros({out_dim}, name_ + ".b");
  gw_ = Tensor::Zeros({in_dim, out_dim}, name_ + ".w.grad");
  gb_ = Tensor::Zeros({out_dim}, name_ + ".b.grad");
}

void DenseLayer::InitParams(Rng* rng) {
  // Xavier-uniform, the PyTorch default for linear layers.
  const float bound =
      std::sqrt(6.0f / static_cast<float>(in_dim_ + out_dim_));
  for (size_t i = 0; i < w_.numel(); ++i) {
    w_[i] = static_cast<float>(rng->Uniform(-bound, bound));
  }
  b_.Fill(0.0f);
}

Status DenseLayer::Forward(const Tensor& in, Tensor* out) {
  if (in.numel() % in_dim_ != 0) {
    return Status::InvalidArgument(
        StrFormat("%s: input numel %zu not divisible by in_dim %zu",
                  name_.c_str(), in.numel(), in_dim_));
  }
  const size_t batch = in.numel() / in_dim_;
  input_ = in.Clone();
  *out = Tensor::Zeros({batch, out_dim_}, name_ + ".out");
  Gemm(in.data(), w_.data(), out->data(), batch, in_dim_, out_dim_);
  for (size_t r = 0; r < batch; ++r) {
    float* row = out->data() + r * out_dim_;
    for (size_t c = 0; c < out_dim_; ++c) row[c] += b_[c];
  }
  switch (act_) {
    case Activation::kNone:
      break;
    case Activation::kRelu:
      for (size_t i = 0; i < out->numel(); ++i) {
        if ((*out)[i] < 0.0f) (*out)[i] = 0.0f;
      }
      break;
    case Activation::kTanh:
      for (size_t i = 0; i < out->numel(); ++i) {
        (*out)[i] = std::tanh((*out)[i]);
      }
      break;
  }
  output_ = out->Clone();
  return Status::OK();
}

Status DenseLayer::Backward(const Tensor& grad_out, Tensor* grad_in) {
  if (!input_.defined()) {
    return Status::FailedPrecondition(name_ + ": Backward before Forward");
  }
  const size_t batch = input_.numel() / in_dim_;
  if (grad_out.numel() != batch * out_dim_) {
    return Status::InvalidArgument(name_ + ": grad_out shape mismatch");
  }
  // Gradient through the activation.
  Tensor g = grad_out.Clone();
  switch (act_) {
    case Activation::kNone:
      break;
    case Activation::kRelu:
      for (size_t i = 0; i < g.numel(); ++i) {
        if (output_[i] <= 0.0f) g[i] = 0.0f;
      }
      break;
    case Activation::kTanh:
      for (size_t i = 0; i < g.numel(); ++i) {
        g[i] *= 1.0f - output_[i] * output_[i];
      }
      break;
  }
  // gw[in,out] += input^T [in,batch] * g [batch,out]
  GemmTransA(input_.data(), g.data(), gw_.data(), in_dim_, batch, out_dim_,
             /*accumulate=*/true);
  // gb[out] += column sums of g
  for (size_t r = 0; r < batch; ++r) {
    const float* row = g.data() + r * out_dim_;
    for (size_t c = 0; c < out_dim_; ++c) gb_[c] += row[c];
  }
  if (grad_in != nullptr) {
    // grad_in[batch,in] = g [batch,out] * W^T (W stored [in,out])
    *grad_in = Tensor::Zeros({batch, in_dim_}, name_ + ".gin");
    GemmTransB(g.data(), w_.data(), grad_in->data(), batch, out_dim_, in_dim_);
  }
  return Status::OK();
}

std::vector<Param> DenseLayer::params() {
  return {{&w_, &gw_, w_.name()}, {&b_, &gb_, b_.name()}};
}

}  // namespace bagua
