#include "model/recurrent.h"

#include <cmath>
#include <cstring>

#include "base/logging.h"
#include "base/strings.h"
#include "tensor/ops.h"

namespace bagua {

namespace {
inline float Sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }
}  // namespace

// -------------------------------------------------------------- Embedding

EmbeddingLayer::EmbeddingLayer(std::string name, size_t vocab, size_t dim)
    : name_(std::move(name)), vocab_(vocab), dim_(dim) {
  table_ = Tensor::Zeros({vocab, dim}, name_ + ".table");
  gtable_ = Tensor::Zeros({vocab, dim}, name_ + ".table.grad");
}

void EmbeddingLayer::InitParams(Rng* rng) {
  for (size_t i = 0; i < table_.numel(); ++i) {
    table_[i] = static_cast<float>(rng->Normal() * 0.1);
  }
}

Status EmbeddingLayer::Forward(const Tensor& in, Tensor* out) {
  const size_t tokens = in.numel();
  input_ = in.Clone();
  *out = Tensor::Zeros({tokens, dim_}, name_ + ".out");
  for (size_t t = 0; t < tokens; ++t) {
    const long id = std::lround(in[t]);
    if (id < 0 || static_cast<size_t>(id) >= vocab_) {
      return Status::InvalidArgument(
          StrFormat("%s: token id %ld out of vocab %zu", name_.c_str(), id,
                    vocab_));
    }
    std::memcpy(out->data() + t * dim_, table_.data() + id * dim_,
                dim_ * sizeof(float));
  }
  return Status::OK();
}

Status EmbeddingLayer::Backward(const Tensor& grad_out, Tensor* grad_in) {
  if (!input_.defined()) {
    return Status::FailedPrecondition(name_ + ": Backward before Forward");
  }
  const size_t tokens = input_.numel();
  if (grad_out.numel() != tokens * dim_) {
    return Status::InvalidArgument(name_ + ": grad_out shape mismatch");
  }
  for (size_t t = 0; t < tokens; ++t) {
    const long id = std::lround(input_[t]);
    Axpy(1.0f, grad_out.data() + t * dim_, gtable_.data() + id * dim_, dim_);
  }
  if (grad_in != nullptr) {
    // Token ids are not differentiable; propagate zeros of the input shape.
    *grad_in = Tensor::Zeros(input_.shape(), name_ + ".gin");
  }
  return Status::OK();
}

std::vector<Param> EmbeddingLayer::params() {
  return {{&table_, &gtable_, table_.name()}};
}

// ------------------------------------------------------------------- LSTM

LstmLayer::LstmLayer(std::string name, size_t input_dim, size_t hidden,
                     size_t seq)
    : name_(std::move(name)), input_dim_(input_dim), hidden_(hidden),
      seq_(seq) {
  BAGUA_CHECK_GT(seq, 0u);
  wx_ = Tensor::Zeros({input_dim, 4 * hidden}, name_ + ".wx");
  wh_ = Tensor::Zeros({hidden, 4 * hidden}, name_ + ".wh");
  b_ = Tensor::Zeros({4 * hidden}, name_ + ".b");
  gwx_ = Tensor::Zeros({input_dim, 4 * hidden}, name_ + ".wx.grad");
  gwh_ = Tensor::Zeros({hidden, 4 * hidden}, name_ + ".wh.grad");
  gb_ = Tensor::Zeros({4 * hidden}, name_ + ".b.grad");
}

void LstmLayer::InitParams(Rng* rng) {
  const float bx = std::sqrt(6.0f / static_cast<float>(input_dim_ + hidden_));
  for (size_t i = 0; i < wx_.numel(); ++i) {
    wx_[i] = static_cast<float>(rng->Uniform(-bx, bx));
  }
  const float bh = std::sqrt(3.0f / static_cast<float>(hidden_));
  for (size_t i = 0; i < wh_.numel(); ++i) {
    wh_[i] = static_cast<float>(rng->Uniform(-bh, bh));
  }
  b_.Fill(0.0f);
  // Forget-gate bias 1: the standard trick for gradient flow.
  for (size_t i = hidden_; i < 2 * hidden_; ++i) b_[i] = 1.0f;
}

Status LstmLayer::Forward(const Tensor& in, Tensor* out) {
  const size_t step_dim = input_dim_;
  if (in.numel() % (seq_ * step_dim) != 0) {
    return Status::InvalidArgument(
        StrFormat("%s: input numel %zu not divisible by seq*input %zu",
                  name_.c_str(), in.numel(), seq_ * step_dim));
  }
  batch_ = in.numel() / (seq_ * step_dim);
  const size_t bh = batch_ * hidden_;
  const size_t b4h = batch_ * 4 * hidden_;
  xs_.assign(seq_ * batch_ * step_dim, 0.0f);
  hs_.assign((seq_ + 1) * bh, 0.0f);
  cs_.assign((seq_ + 1) * bh, 0.0f);
  gates_.assign(seq_ * b4h, 0.0f);

  // Input arrives as [batch, seq*input]; repack to [seq][batch, input].
  for (size_t bb = 0; bb < batch_; ++bb) {
    for (size_t t = 0; t < seq_; ++t) {
      std::memcpy(xs_.data() + (t * batch_ + bb) * step_dim,
                  in.data() + bb * seq_ * step_dim + t * step_dim,
                  step_dim * sizeof(float));
    }
  }

  std::vector<float> pre(b4h);
  for (size_t t = 0; t < seq_; ++t) {
    const float* xt = xs_.data() + t * batch_ * step_dim;
    const float* hprev = hs_.data() + t * bh;
    // pre = x_t Wx + h_{t-1} Wh + b
    Gemm(xt, wx_.data(), pre.data(), batch_, step_dim, 4 * hidden_);
    Gemm(hprev, wh_.data(), pre.data(), batch_, hidden_, 4 * hidden_,
         /*accumulate=*/true);
    float* gates = gates_.data() + t * b4h;
    float* h = hs_.data() + (t + 1) * bh;
    float* c = cs_.data() + (t + 1) * bh;
    const float* cprev = cs_.data() + t * bh;
    for (size_t bb = 0; bb < batch_; ++bb) {
      const float* p = pre.data() + bb * 4 * hidden_;
      float* g = gates + bb * 4 * hidden_;
      for (size_t j = 0; j < hidden_; ++j) {
        const float gi = Sigmoid(p[j] + b_[j]);
        const float gf = Sigmoid(p[hidden_ + j] + b_[hidden_ + j]);
        const float gg = std::tanh(p[2 * hidden_ + j] + b_[2 * hidden_ + j]);
        const float go = Sigmoid(p[3 * hidden_ + j] + b_[3 * hidden_ + j]);
        g[j] = gi;
        g[hidden_ + j] = gf;
        g[2 * hidden_ + j] = gg;
        g[3 * hidden_ + j] = go;
        const float cc = gf * cprev[bb * hidden_ + j] + gi * gg;
        c[bb * hidden_ + j] = cc;
        h[bb * hidden_ + j] = go * std::tanh(cc);
      }
    }
  }
  *out = Tensor::Zeros({batch_, hidden_}, name_ + ".out");
  std::memcpy(out->data(), hs_.data() + seq_ * bh, bh * sizeof(float));
  return Status::OK();
}

Status LstmLayer::Backward(const Tensor& grad_out, Tensor* grad_in) {
  if (batch_ == 0) {
    return Status::FailedPrecondition(name_ + ": Backward before Forward");
  }
  const size_t bh = batch_ * hidden_;
  const size_t b4h = batch_ * 4 * hidden_;
  if (grad_out.numel() != bh) {
    return Status::InvalidArgument(name_ + ": grad_out shape mismatch");
  }
  std::vector<float> dh(grad_out.data(), grad_out.data() + bh);
  std::vector<float> dc(bh, 0.0f);
  std::vector<float> dpre(b4h);
  std::vector<float> dx(seq_ * batch_ * input_dim_, 0.0f);
  std::vector<float> dh_prev(bh);

  for (size_t t = seq_; t > 0; --t) {
    const float* gates = gates_.data() + (t - 1) * b4h;
    const float* c = cs_.data() + t * bh;
    const float* cprev = cs_.data() + (t - 1) * bh;
    for (size_t bb = 0; bb < batch_; ++bb) {
      const float* g = gates + bb * 4 * hidden_;
      float* dp = dpre.data() + bb * 4 * hidden_;
      for (size_t j = 0; j < hidden_; ++j) {
        const size_t idx = bb * hidden_ + j;
        const float gi = g[j], gf = g[hidden_ + j], gg = g[2 * hidden_ + j],
                    go = g[3 * hidden_ + j];
        const float tc = std::tanh(c[idx]);
        // dL/dc accumulates through h = o * tanh(c) and the next step.
        const float dct = dc[idx] + dh[idx] * go * (1.0f - tc * tc);
        dp[j] = dct * gg * gi * (1.0f - gi);                   // input gate
        dp[hidden_ + j] = dct * cprev[idx] * gf * (1.0f - gf);  // forget
        dp[2 * hidden_ + j] = dct * gi * (1.0f - gg * gg);      // cell
        dp[3 * hidden_ + j] = dh[idx] * tc * go * (1.0f - go);  // output
        dc[idx] = dct * gf;  // to step t-1
      }
    }
    const float* xt = xs_.data() + (t - 1) * batch_ * input_dim_;
    const float* hprev = hs_.data() + (t - 1) * bh;
    // Parameter gradients: gwx += x_t^T dpre; gwh += h_{t-1}^T dpre.
    GemmTransA(xt, dpre.data(), gwx_.data(), input_dim_, batch_, 4 * hidden_,
               /*accumulate=*/true);
    GemmTransA(hprev, dpre.data(), gwh_.data(), hidden_, batch_, 4 * hidden_,
               /*accumulate=*/true);
    for (size_t bb = 0; bb < batch_; ++bb) {
      Axpy(1.0f, dpre.data() + bb * 4 * hidden_, gb_.data(), 4 * hidden_);
    }
    // dx_t = dpre Wx^T; dh_{t-1} = dpre Wh^T.
    GemmTransB(dpre.data(), wx_.data(), dx.data() + (t - 1) * batch_ *
               input_dim_, batch_, 4 * hidden_, input_dim_);
    GemmTransB(dpre.data(), wh_.data(), dh_prev.data(), batch_, 4 * hidden_,
               hidden_);
    dh = dh_prev;
  }
  if (grad_in != nullptr) {
    *grad_in = Tensor::Zeros({batch_, seq_ * input_dim_}, name_ + ".gin");
    for (size_t bb = 0; bb < batch_; ++bb) {
      for (size_t t = 0; t < seq_; ++t) {
        std::memcpy(grad_in->data() + bb * seq_ * input_dim_ + t * input_dim_,
                    dx.data() + (t * batch_ + bb) * input_dim_,
                    input_dim_ * sizeof(float));
      }
    }
  }
  return Status::OK();
}

std::vector<Param> LstmLayer::params() {
  return {{&wx_, &gwx_, wx_.name()},
          {&wh_, &gwh_, wh_.name()},
          {&b_, &gb_, b_.name()}};
}

}  // namespace bagua
