#include "model/checkpoint.h"

#include <cstdio>
#include <cstring>
#include <memory>

#include "base/strings.h"

namespace bagua {

namespace {

constexpr char kMagic[4] = {'B', 'G', 'C', 'K'};
constexpr uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

Status WriteAll(std::FILE* f, const void* data, size_t bytes) {
  if (std::fwrite(data, 1, bytes, f) != bytes) {
    return Status::IoError("checkpoint write failed");
  }
  return Status::OK();
}

Status ReadAll(std::FILE* f, void* data, size_t bytes) {
  if (std::fread(data, 1, bytes, f) != bytes) {
    return Status::IoError("checkpoint truncated");
  }
  return Status::OK();
}

}  // namespace

Status SaveCheckpoint(Net* net, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return Status::IoError("cannot open for writing: " + path);
  }
  RETURN_IF_ERROR(WriteAll(f.get(), kMagic, 4));
  RETURN_IF_ERROR(WriteAll(f.get(), &kVersion, 4));
  const auto params = net->params();
  const uint64_t count = params.size();
  RETURN_IF_ERROR(WriteAll(f.get(), &count, 8));
  for (const Param& p : params) {
    const uint32_t name_len = static_cast<uint32_t>(p.name.size());
    RETURN_IF_ERROR(WriteAll(f.get(), &name_len, 4));
    RETURN_IF_ERROR(WriteAll(f.get(), p.name.data(), name_len));
    const uint64_t numel = p.value->numel();
    RETURN_IF_ERROR(WriteAll(f.get(), &numel, 8));
    RETURN_IF_ERROR(WriteAll(f.get(), p.value->data(), numel * 4));
  }
  return Status::OK();
}

Status LoadCheckpoint(Net* net, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return Status::NotFound("cannot open checkpoint: " + path);
  }
  char magic[4];
  uint32_t version;
  RETURN_IF_ERROR(ReadAll(f.get(), magic, 4));
  if (std::memcmp(magic, kMagic, 4) != 0) {
    return Status::InvalidArgument("not a BAGUA checkpoint: " + path);
  }
  RETURN_IF_ERROR(ReadAll(f.get(), &version, 4));
  if (version != kVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported checkpoint version %u", version));
  }
  uint64_t count;
  RETURN_IF_ERROR(ReadAll(f.get(), &count, 8));
  const auto params = net->params();
  if (count != params.size()) {
    return Status::InvalidArgument(
        StrFormat("checkpoint has %llu tensors, model has %zu",
                  (unsigned long long)count, params.size()));
  }
  for (const Param& p : params) {
    uint32_t name_len;
    RETURN_IF_ERROR(ReadAll(f.get(), &name_len, 4));
    if (name_len > 4096) {
      return Status::InvalidArgument("corrupt checkpoint: name too long");
    }
    std::string name(name_len, '\0');
    RETURN_IF_ERROR(ReadAll(f.get(), name.data(), name_len));
    if (name != p.name) {
      return Status::InvalidArgument(
          StrFormat("checkpoint tensor '%s' does not match model tensor '%s'",
                    name.c_str(), p.name.c_str()));
    }
    uint64_t numel;
    RETURN_IF_ERROR(ReadAll(f.get(), &numel, 8));
    if (numel != p.value->numel()) {
      return Status::InvalidArgument(
          StrFormat("checkpoint tensor '%s' has %llu elements, model has %zu",
                    name.c_str(), (unsigned long long)numel,
                    p.value->numel()));
    }
    RETURN_IF_ERROR(ReadAll(f.get(), p.value->data(), numel * 4));
  }
  return Status::OK();
}

}  // namespace bagua
