#include "model/scheduler.h"

#include <cmath>

namespace bagua {

double LrScheduler::LrAt(uint64_t step) const {
  if (warmup_steps_ > 0 && step < warmup_steps_) {
    return base_lr_ * static_cast<double>(step + 1) /
           static_cast<double>(warmup_steps_);
  }
  if (total_steps_ == 0) return base_lr_;
  if (step >= total_steps_) return base_lr_ * final_fraction_;
  const double progress =
      static_cast<double>(step - warmup_steps_) /
      static_cast<double>(total_steps_ - warmup_steps_);
  const double cosine = 0.5 * (1.0 + std::cos(M_PI * progress));
  return base_lr_ * (final_fraction_ + (1.0 - final_fraction_) * cosine);
}

}  // namespace bagua
