#include "model/profiles.h"

#include "base/logging.h"
#include "base/strings.h"

namespace bagua {

size_t ModelProfile::TotalParams() const {
  size_t n = 0;
  for (const auto& b : blocks) n += b.params;
  return n;
}

double ModelProfile::TotalFlops() const {
  double f = 0.0;
  for (const auto& b : blocks) f += b.flops;
  return f;
}

int ModelProfile::TotalTensors() const {
  int n = 0;
  for (const auto& b : blocks) n += b.num_tensors;
  return n;
}

size_t ModelProfile::IterationsPerEpoch(int world_size) const {
  const size_t global_batch =
      train.batch_per_device * static_cast<size_t>(world_size);
  BAGUA_CHECK_GT(global_batch, 0u);
  return (train.samples_per_epoch + global_batch - 1) / global_batch;
}

// Block budgets below follow the published architectures, scaled so that
// totals match the paper's Table 2 (params) with FLOPs interpreted as
// per-sample forward+backward cost. The front-to-back order matters: the
// scheduler overlaps bucket communication with the backward pass, which
// walks these blocks in reverse.

ModelProfile ModelProfile::Vgg16() {
  ModelProfile p;
  p.name = "vgg16";
  // (params, fwd+bwd GFLOPs/sample) of the 13 conv + 3 fc layers at 224^2.
  const struct {
    const char* name;
    size_t params;
    double gflops;
  } layers[] = {
      {"conv1_1", 1792, 0.17},      {"conv1_2", 36928, 3.68},
      {"conv2_1", 73856, 1.84},     {"conv2_2", 147584, 3.68},
      {"conv3_1", 295168, 1.84},    {"conv3_2", 590080, 3.68},
      {"conv3_3", 590080, 3.68},    {"conv4_1", 1180160, 1.84},
      {"conv4_2", 2359808, 3.68},   {"conv4_3", 2359808, 3.68},
      {"conv5_1", 2359808, 0.92},   {"conv5_2", 2359808, 0.92},
      {"conv5_3", 2359808, 0.92},   {"fc6", 102764544, 0.41},
      {"fc7", 16781312, 0.066},      {"fc8", 4097000, 0.014},
  };
  for (const auto& l : layers) {
    p.blocks.push_back({l.name, l.params, l.gflops * 1e9, 2});
  }
  // ImageNet-1k epoch, 32 images per V100 (Table 4 calibration).
  p.train = {1'281'167, 32, 0.0300, /*uses_adam=*/false};
  return p;
}

ModelProfile ModelProfile::BertLarge() {
  ModelProfile p;
  p.name = "bert-large";
  // 24 encoder blocks of hidden 1024 (~12.6M params each; q/k/v/o + 2-layer
  // FFN + 2 LayerNorms = 16 tensors). Embeddings are excluded from training
  // (matching the paper's 302.2M total).
  const double flops_per_block = 232e9 / 24.0;
  for (int i = 0; i < 24; ++i) {
    p.blocks.push_back({StrFormat("encoder%02d", i), 12'592'128,
                        flops_per_block, 16});
  }
  // SQuAD-scale finetune (with augmentation passes): small per-device batch
  // keeps V100 kernels far from peak (the efficiency calibration constant).
  p.train = {88'000, 4, 0.0148, /*uses_adam=*/true};
  return p;
}

ModelProfile ModelProfile::BertBase() {
  ModelProfile p;
  p.name = "bert-base";
  // 12 encoder blocks of hidden 768 (~7.1M each), matching 85.6M total.
  const double flops_per_block = 22e9 / 12.0;
  for (int i = 0; i < 12; ++i) {
    p.blocks.push_back({StrFormat("encoder%02d", i), 7'133'333,
                        flops_per_block, 16});
  }
  // Kwai production text corpus (proprietary; sized to match Table 4).
  p.train = {5'270'000, 32, 0.0193, /*uses_adam=*/true};
  return p;
}

ModelProfile ModelProfile::Transformer() {
  ModelProfile p;
  p.name = "transformer";
  // AISHELL-2 speech transformer: conv frontend + 12 encoder + 6 decoder.
  p.blocks.push_back({"frontend", 2'100'000, 14.5e9, 4});
  for (int i = 0; i < 12; ++i) {
    p.blocks.push_back({StrFormat("encoder%02d", i), 4'200'000, 7.9e9, 16});
  }
  for (int i = 0; i < 6; ++i) {
    p.blocks.push_back({StrFormat("decoder%02d", i), 2'333'333, 5.9e9, 20});
  }
  p.train = {848'000, 16, 0.0309, /*uses_adam=*/true};
  return p;
}

ModelProfile ModelProfile::LstmAlexNet() {
  ModelProfile p;
  p.name = "lstm-alexnet";
  // AlexNet vision tower (fc-heavy) + 2-layer LSTM text tower (hidden 2048),
  // the paper's Kwai image+text production model.
  const struct {
    const char* name;
    size_t params;
    double gflops;
    int tensors;
  } layers[] = {
      {"conv1", 34944, 0.63, 2},    {"conv2", 307392, 1.34, 2},
      {"conv3", 885120, 0.90, 2},   {"conv4", 663936, 0.67, 2},
      {"conv5", 442624, 0.45, 2},   {"fc6", 37752832, 0.23, 2},
      {"fc7", 16781312, 0.10, 2},   {"fc8", 4097000, 0.02, 2},
      {"lstm1", 31893504, 40.3, 4}, {"lstm2", 31893504, 40.3, 4},
      {"head", 2048000, 12.15, 2},
  };
  for (const auto& l : layers) {
    p.blocks.push_back({l.name, l.params, l.gflops * 1e9, l.tensors});
  }
  p.train = {1'280'000, 64, 0.0622, /*uses_adam=*/false};
  return p;
}

ModelProfile ModelProfile::Dlrm() {
  ModelProfile p;
  p.name = "dlrm";
  // Facebook-scale DLRM, shrunk ~100x: 8 categorical tables of 2M rows at
  // dim 64 (~1G params, nearly all embeddings), small dense MLPs. Embedding
  // blocks are lookup-bound (1 tensor each, negligible FLOPs); the MLPs
  // carry the arithmetic. The serving pricer reads rows/dims off this
  // profile; the live bench uses a smaller DlrmConfig with the same shape.
  for (int t = 0; t < 8; ++t) {
    p.blocks.push_back(
        {StrFormat("table%02d", t), 2'000'000 * 64, 2.0e6, 1});
  }
  p.blocks.push_back({"bottom_mlp", 13 * 512 + 512 * 256 + 256 * 64, 0.5e6, 6});
  p.blocks.push_back({"top_mlp", 576 * 512 + 512 * 256 + 256 * 1, 1.2e6, 6});
  // Click-log epoch; small batch, lookup-dominated kernels run cold.
  p.train = {4'000'000, 128, 0.0100, /*uses_adam=*/true};
  return p;
}

std::vector<ModelProfile> ModelProfile::AllPaperModels() {
  return {Vgg16(), BertLarge(), BertBase(), Transformer(), LstmAlexNet()};
}

ModelProfile ModelProfile::ByName(const std::string& name) {
  for (auto& p : AllPaperModels()) {
    if (p.name == name) return p;
  }
  if (name == "dlrm") return Dlrm();
  LOG_FATAL << "unknown model profile: " << name;
  return {};
}

}  // namespace bagua
