#ifndef BAGUA_MODEL_RECURRENT_H_
#define BAGUA_MODEL_RECURRENT_H_

#include "model/layer.h"

namespace bagua {

/// \brief Token embedding table: maps integer ids (stored as floats) to
/// dense rows. Input [batch, seq]; output [batch, seq * dim].
///
/// Backward scatter-adds into the table gradient — the sparse-update
/// pattern whose gradients compress so well (most rows are zero each
/// step), motivating the top-K relaxation.
class EmbeddingLayer : public Layer {
 public:
  EmbeddingLayer(std::string name, size_t vocab, size_t dim);

  const std::string& name() const override { return name_; }
  Status Forward(const Tensor& in, Tensor* out) override;
  Status Backward(const Tensor& grad_out, Tensor* grad_in) override;
  std::vector<Param> params() override;
  void InitParams(Rng* rng) override;

  size_t vocab() const { return vocab_; }
  size_t dim() const { return dim_; }

 private:
  std::string name_;
  size_t vocab_, dim_;
  Tensor table_, gtable_;
  Tensor input_;  // cached ids
};

/// \brief Single-layer LSTM over a fixed-length sequence (the paper's
/// LSTM+AlexNet text tower). Input [batch, seq * input_dim]; output is the
/// FINAL hidden state [batch, hidden]. Full BPTT backward.
class LstmLayer : public Layer {
 public:
  LstmLayer(std::string name, size_t input_dim, size_t hidden, size_t seq);

  const std::string& name() const override { return name_; }
  Status Forward(const Tensor& in, Tensor* out) override;
  Status Backward(const Tensor& grad_out, Tensor* grad_in) override;
  std::vector<Param> params() override;
  void InitParams(Rng* rng) override;

  size_t hidden() const { return hidden_; }

 private:
  std::string name_;
  size_t input_dim_, hidden_, seq_;
  // Gate order within the 4H blocks: input, forget, cell(g), output.
  Tensor wx_;  // [input_dim, 4H]
  Tensor wh_;  // [hidden, 4H]
  Tensor b_;   // [4H]
  Tensor gwx_, gwh_, gb_;
  // Per-step caches for BPTT.
  size_t batch_ = 0;
  std::vector<float> xs_;     // [seq][batch, input_dim]
  std::vector<float> hs_;     // [seq+1][batch, H] (hs_[0] = 0)
  std::vector<float> cs_;     // [seq+1][batch, H]
  std::vector<float> gates_;  // [seq][batch, 4H] post-activation
};

}  // namespace bagua

#endif  // BAGUA_MODEL_RECURRENT_H_
