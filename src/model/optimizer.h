#ifndef BAGUA_MODEL_OPTIMIZER_H_
#define BAGUA_MODEL_OPTIMIZER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "base/status.h"
#include "tensor/dtype.h"
#include "tensor/tensor.h"

namespace bagua {

/// \brief Optimizers operate on flat (param, grad) spans so the runtime can
/// run them per bucket over flattened storage (§3.4: "the SG based optimizer
/// for model update is also conducted at the level of buckets").
///
/// State (momentum/Adam moments) is keyed by the param pointer's span, so an
/// optimizer instance must see consistent spans across steps.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update: param -= f(grad). `slot` identifies the span for
  /// stateful optimizers (callers pass a stable id per bucket/param).
  virtual Status Step(size_t slot, float* param, const float* grad,
                      size_t n) = 0;

  virtual const char* name() const = 0;

  /// FLOPs per element of one update (for the timing model).
  virtual double FlopsPerElement() const = 0;
};

/// \brief Clips a gradient span to a maximum L2 norm in place; returns the
/// pre-clip norm. The standard stabilizer for RNN training (and a useful
/// guard around aggressive compression noise).
double ClipGradNorm(float* grad, size_t n, double max_norm);

/// \brief Plain SGD with optional momentum and decoupled weight decay.
class SgdOptimizer : public Optimizer {
 public:
  explicit SgdOptimizer(double lr, double momentum = 0.0,
                        double weight_decay = 0.0);

  Status Step(size_t slot, float* param, const float* grad,
              size_t n) override;
  const char* name() const override { return "sgd"; }
  double FlopsPerElement() const override { return momentum_ > 0 ? 4 : 2; }

  void set_lr(double lr) { lr_ = lr; }
  double lr() const { return lr_; }

 private:
  double lr_;
  double momentum_;
  double weight_decay_;
  std::vector<std::vector<float>> velocity_;  // per slot
};

/// \brief Adam (Kingma & Ba). The base optimizer of 1-bit Adam's warmup
/// stage; its per-coordinate second moment is what 1-bit Adam freezes.
class AdamOptimizer : public Optimizer {
 public:
  AdamOptimizer(double lr, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8);

  Status Step(size_t slot, float* param, const float* grad,
              size_t n) override;
  const char* name() const override { return "adam"; }
  double FlopsPerElement() const override { return 10; }

  void set_lr(double lr) { lr_ = lr; }
  double lr() const { return lr_; }

  /// Freezes the second-moment estimate: subsequent steps keep v fixed and
  /// only update the first moment — the "compression stage" behaviour of
  /// 1-bit Adam [79].
  void FreezeVariance() { variance_frozen_ = true; }
  bool variance_frozen() const { return variance_frozen_; }

  /// Read-only view of a slot's second moment (empty until first step).
  const std::vector<float>& variance(size_t slot) const;

  /// Read-only view of a slot's first moment (empty until first step).
  const std::vector<float>& momentum(size_t slot) const;

  /// Steps taken on a slot (for bias-correction terms).
  int64_t step_count(size_t slot) const;

  double beta1() const { return beta1_; }
  double beta2() const { return beta2_; }
  double eps() const { return eps_; }

 private:
  struct State {
    std::vector<float> m;
    std::vector<float> v;
    int64_t t = 0;
  };
  double lr_, beta1_, beta2_, eps_;
  bool variance_frozen_ = false;
  std::vector<State> states_;
};

/// \brief Mixed-precision wrapper: 16-bit (bf16/fp16) parameters and
/// gradients on the outside, fp32 master weights and an unmodified inner
/// optimizer on the inside — the standard recipe that keeps reduced-storage
/// training from stalling once updates shrink below the 16-bit ulp.
///
/// Step(slot, param16, grad16, n):
///   1. widen grad16 to fp32 staging (vectorized kernels, "tensor" arena
///      scratch — zero steady-state heap traffic);
///   2. inner->Step(slot, master, grad_fp32, n) against the fp32 master
///      copy (lazily initialized by widening the first param16 it sees);
///   3. re-pack master to param16 with round-to-nearest-even.
///
/// Determinism: the convert kernels are element-independent and the inner
/// optimizers run fixed-grain IntraOpFor bodies, so trajectories are
/// bit-identical at any intra-op thread count (the precision gate checks
/// 1/2/8). The master copy never re-reads param16, so quantization error
/// does not accumulate across steps.
class MixedPrecisionOptimizer {
 public:
  /// `dtype` must be kBf16 or kFp16 (a 16-bit storage format).
  MixedPrecisionOptimizer(std::unique_ptr<Optimizer> inner, WireDtype dtype);

  /// One update over a 16-bit (param, grad) span. The slot keys both the
  /// master weights here and the state of the inner optimizer.
  Status Step(size_t slot, uint16_t* param, const uint16_t* grad, size_t n);

  const char* name() const { return inner_->name(); }
  WireDtype dtype() const { return dtype_; }
  Optimizer* inner() { return inner_.get(); }

  /// Read-only view of a slot's fp32 master weights (empty until first
  /// step) — what a checkpoint would save.
  const std::vector<float>& master(size_t slot) const;

 private:
  std::unique_ptr<Optimizer> inner_;
  WireDtype dtype_;
  std::vector<std::vector<float>> master_;  // per slot
};

}  // namespace bagua

#endif  // BAGUA_MODEL_OPTIMIZER_H_
