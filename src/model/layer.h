#ifndef BAGUA_MODEL_LAYER_H_
#define BAGUA_MODEL_LAYER_H_

#include <memory>
#include <string>
#include <vector>

#include "base/rng.h"
#include "base/status.h"
#include "tensor/tensor.h"

namespace bagua {

/// \brief A trainable parameter slot: value + gradient tensors.
///
/// Slots expose *pointers to the owning layer's members*, so the runtime's
/// flattening pass can re-home them into bucket buffers in place and the
/// layer transparently computes on the flattened storage afterwards.
struct Param {
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
  std::string name;
};

/// \brief Activation applied by a DenseLayer after the affine transform.
enum class Activation { kNone, kRelu, kTanh };

/// \brief Base class of differentiable layers (the per-layer unit the
/// BAGUA runtime hooks into, mirroring how its PyTorch integration hooks
/// each module's backward).
class Layer {
 public:
  virtual ~Layer() = default;

  virtual const std::string& name() const = 0;

  /// Computes the layer output for a [batch, in] input.
  virtual Status Forward(const Tensor& in, Tensor* out) = 0;

  /// Consumes d(loss)/d(out), accumulates parameter gradients, and produces
  /// d(loss)/d(in). Must be called after the matching Forward.
  virtual Status Backward(const Tensor& grad_out, Tensor* grad_in) = 0;

  /// Trainable parameters (empty for stateless layers).
  virtual std::vector<Param> params() { return {}; }

  /// Deterministically (re-)initializes parameters from `rng`.
  virtual void InitParams(Rng* rng) { (void)rng; }
};

/// \brief Fully connected layer with optional fused activation:
/// out = act(in * W + b), W: [in, out] row-major.
class DenseLayer : public Layer {
 public:
  DenseLayer(std::string name, size_t in_dim, size_t out_dim,
             Activation act = Activation::kNone);

  const std::string& name() const override { return name_; }
  Status Forward(const Tensor& in, Tensor* out) override;
  Status Backward(const Tensor& grad_out, Tensor* grad_in) override;
  std::vector<Param> params() override;
  void InitParams(Rng* rng) override;

  size_t in_dim() const { return in_dim_; }
  size_t out_dim() const { return out_dim_; }

 private:
  std::string name_;
  size_t in_dim_;
  size_t out_dim_;
  Activation act_;
  Tensor w_, b_, gw_, gb_;
  Tensor input_;   // cached forward input
  Tensor output_;  // cached post-activation output (for act')
};

}  // namespace bagua

#endif  // BAGUA_MODEL_LAYER_H_
