#ifndef BAGUA_MODEL_CONV_H_
#define BAGUA_MODEL_CONV_H_

#include "model/layer.h"

namespace bagua {

/// \brief 2-D convolution (NCHW, square kernel, stride 1, zero padding)
/// with optional fused activation, implemented as im2col + GEMM — the
/// layer type behind the paper's VGG16 / AlexNet workloads.
///
/// Input tensors are flat [batch, in_c * h * w]; output is
/// [batch, out_c * h_out * w_out] with h_out = h + 2*pad - k + 1.
class Conv2dLayer : public Layer {
 public:
  Conv2dLayer(std::string name, size_t in_c, size_t out_c, size_t h, size_t w,
              size_t k, size_t pad = 0, Activation act = Activation::kNone);

  const std::string& name() const override { return name_; }
  Status Forward(const Tensor& in, Tensor* out) override;
  Status Backward(const Tensor& grad_out, Tensor* grad_in) override;
  std::vector<Param> params() override;
  void InitParams(Rng* rng) override;

  size_t out_h() const { return out_h_; }
  size_t out_w() const { return out_w_; }
  size_t out_dim() const { return out_c_ * out_h_ * out_w_; }

 private:
  /// Expands one image [in_c, h, w] into columns [in_c*k*k, out_h*out_w].
  void Im2Col(const float* image, float* cols) const;
  /// Scatters column gradients back into an image (the adjoint of Im2Col).
  void Col2Im(const float* cols, float* image) const;

  std::string name_;
  size_t in_c_, out_c_, h_, w_, k_, pad_;
  size_t out_h_, out_w_;
  Activation act_;
  Tensor weight_;  // [out_c, in_c*k*k]
  Tensor bias_;    // [out_c]
  Tensor gw_, gb_;
  Tensor input_;   // cached forward input
  Tensor output_;  // cached post-activation output
};

/// \brief 2x2 max pooling with stride 2 (NCHW, flat tensors). `h` and `w`
/// must be even.
class MaxPool2dLayer : public Layer {
 public:
  MaxPool2dLayer(std::string name, size_t channels, size_t h, size_t w);

  const std::string& name() const override { return name_; }
  Status Forward(const Tensor& in, Tensor* out) override;
  Status Backward(const Tensor& grad_out, Tensor* grad_in) override;

  size_t out_dim() const { return channels_ * (h_ / 2) * (w_ / 2); }

 private:
  std::string name_;
  size_t channels_, h_, w_;
  std::vector<uint32_t> argmax_;  // winner index per output element
  size_t batch_ = 0;
};

}  // namespace bagua

#endif  // BAGUA_MODEL_CONV_H_
