#include "model/conv.h"

#include <cmath>
#include <cstring>

#include "base/logging.h"
#include "base/strings.h"
#include "tensor/ops.h"

namespace bagua {

Conv2dLayer::Conv2dLayer(std::string name, size_t in_c, size_t out_c,
                         size_t h, size_t w, size_t k, size_t pad,
                         Activation act)
    : name_(std::move(name)),
      in_c_(in_c),
      out_c_(out_c),
      h_(h),
      w_(w),
      k_(k),
      pad_(pad),
      act_(act) {
  BAGUA_CHECK_GT(k, 0u);
  BAGUA_CHECK_GE(h + 2 * pad + 1, k);
  BAGUA_CHECK_GE(w + 2 * pad + 1, k);
  out_h_ = h + 2 * pad - k + 1;
  out_w_ = w + 2 * pad - k + 1;
  weight_ = Tensor::Zeros({out_c, in_c * k * k}, name_ + ".w");
  bias_ = Tensor::Zeros({out_c}, name_ + ".b");
  gw_ = Tensor::Zeros({out_c, in_c * k * k}, name_ + ".w.grad");
  gb_ = Tensor::Zeros({out_c}, name_ + ".b.grad");
}

void Conv2dLayer::InitParams(Rng* rng) {
  // He-uniform for conv kernels.
  const float fan_in = static_cast<float>(in_c_ * k_ * k_);
  const float bound = std::sqrt(6.0f / fan_in);
  for (size_t i = 0; i < weight_.numel(); ++i) {
    weight_[i] = static_cast<float>(rng->Uniform(-bound, bound));
  }
  bias_.Fill(0.0f);
}

void Conv2dLayer::Im2Col(const float* image, float* cols) const {
  const size_t cols_w = out_h_ * out_w_;
  for (size_t c = 0; c < in_c_; ++c) {
    for (size_t ky = 0; ky < k_; ++ky) {
      for (size_t kx = 0; kx < k_; ++kx) {
        const size_t row = (c * k_ + ky) * k_ + kx;
        for (size_t oy = 0; oy < out_h_; ++oy) {
          const long iy = static_cast<long>(oy + ky) - static_cast<long>(pad_);
          for (size_t ox = 0; ox < out_w_; ++ox) {
            const long ix =
                static_cast<long>(ox + kx) - static_cast<long>(pad_);
            float v = 0.0f;
            if (iy >= 0 && iy < static_cast<long>(h_) && ix >= 0 &&
                ix < static_cast<long>(w_)) {
              v = image[(c * h_ + iy) * w_ + ix];
            }
            cols[row * cols_w + oy * out_w_ + ox] = v;
          }
        }
      }
    }
  }
}

void Conv2dLayer::Col2Im(const float* cols, float* image) const {
  std::memset(image, 0, in_c_ * h_ * w_ * sizeof(float));
  const size_t cols_w = out_h_ * out_w_;
  for (size_t c = 0; c < in_c_; ++c) {
    for (size_t ky = 0; ky < k_; ++ky) {
      for (size_t kx = 0; kx < k_; ++kx) {
        const size_t row = (c * k_ + ky) * k_ + kx;
        for (size_t oy = 0; oy < out_h_; ++oy) {
          const long iy = static_cast<long>(oy + ky) - static_cast<long>(pad_);
          if (iy < 0 || iy >= static_cast<long>(h_)) continue;
          for (size_t ox = 0; ox < out_w_; ++ox) {
            const long ix =
                static_cast<long>(ox + kx) - static_cast<long>(pad_);
            if (ix < 0 || ix >= static_cast<long>(w_)) continue;
            image[(c * h_ + iy) * w_ + ix] +=
                cols[row * cols_w + oy * out_w_ + ox];
          }
        }
      }
    }
  }
}

Status Conv2dLayer::Forward(const Tensor& in, Tensor* out) {
  const size_t in_dim = in_c_ * h_ * w_;
  if (in.numel() % in_dim != 0) {
    return Status::InvalidArgument(
        StrFormat("%s: input numel %zu not divisible by %zu", name_.c_str(),
                  in.numel(), in_dim));
  }
  const size_t batch = in.numel() / in_dim;
  input_ = in.Clone();
  *out = Tensor::Zeros({batch, out_dim()}, name_ + ".out");

  const size_t cols_h = in_c_ * k_ * k_;
  const size_t cols_w = out_h_ * out_w_;
  std::vector<float> cols(cols_h * cols_w);
  for (size_t b = 0; b < batch; ++b) {
    Im2Col(in.data() + b * in_dim, cols.data());
    // out[b] = W [out_c, cols_h] * cols [cols_h, cols_w]
    Gemm(weight_.data(), cols.data(), out->data() + b * out_dim(), out_c_,
         cols_h, cols_w);
    float* ob = out->data() + b * out_dim();
    for (size_t oc = 0; oc < out_c_; ++oc) {
      for (size_t p = 0; p < cols_w; ++p) ob[oc * cols_w + p] += bias_[oc];
    }
  }
  switch (act_) {
    case Activation::kNone:
      break;
    case Activation::kRelu:
      for (size_t i = 0; i < out->numel(); ++i) {
        if ((*out)[i] < 0.0f) (*out)[i] = 0.0f;
      }
      break;
    case Activation::kTanh:
      for (size_t i = 0; i < out->numel(); ++i) {
        (*out)[i] = std::tanh((*out)[i]);
      }
      break;
  }
  output_ = out->Clone();
  return Status::OK();
}

Status Conv2dLayer::Backward(const Tensor& grad_out, Tensor* grad_in) {
  if (!input_.defined()) {
    return Status::FailedPrecondition(name_ + ": Backward before Forward");
  }
  const size_t in_dim = in_c_ * h_ * w_;
  const size_t batch = input_.numel() / in_dim;
  if (grad_out.numel() != batch * out_dim()) {
    return Status::InvalidArgument(name_ + ": grad_out shape mismatch");
  }
  Tensor g = grad_out.Clone();
  switch (act_) {
    case Activation::kNone:
      break;
    case Activation::kRelu:
      for (size_t i = 0; i < g.numel(); ++i) {
        if (output_[i] <= 0.0f) g[i] = 0.0f;
      }
      break;
    case Activation::kTanh:
      for (size_t i = 0; i < g.numel(); ++i) {
        g[i] *= 1.0f - output_[i] * output_[i];
      }
      break;
  }
  if (grad_in != nullptr) {
    *grad_in = Tensor::Zeros({batch, in_dim}, name_ + ".gin");
  }
  const size_t cols_h = in_c_ * k_ * k_;
  const size_t cols_w = out_h_ * out_w_;
  std::vector<float> cols(cols_h * cols_w);
  std::vector<float> dcols(cols_h * cols_w);
  for (size_t b = 0; b < batch; ++b) {
    Im2Col(input_.data() + b * in_dim, cols.data());
    const float* gb = g.data() + b * out_dim();
    // gw [out_c, cols_h] += g_b [out_c, cols_w] * cols^T (cols stored
    // [cols_h, cols_w]).
    GemmTransB(gb, cols.data(), gw_.data(), out_c_, cols_w, cols_h,
               /*accumulate=*/true);
    for (size_t oc = 0; oc < out_c_; ++oc) {
      double s = 0.0;
      for (size_t p = 0; p < cols_w; ++p) s += gb[oc * cols_w + p];
      gb_[oc] += static_cast<float>(s);
    }
    if (grad_in != nullptr) {
      // dcols [cols_h, cols_w] = W^T [cols_h, out_c] * g_b [out_c, cols_w]
      GemmTransA(weight_.data(), gb, dcols.data(), cols_h, out_c_, cols_w);
      Col2Im(dcols.data(), grad_in->data() + b * in_dim);
    }
  }
  return Status::OK();
}

std::vector<Param> Conv2dLayer::params() {
  return {{&weight_, &gw_, weight_.name()}, {&bias_, &gb_, bias_.name()}};
}

MaxPool2dLayer::MaxPool2dLayer(std::string name, size_t channels, size_t h,
                               size_t w)
    : name_(std::move(name)), channels_(channels), h_(h), w_(w) {
  BAGUA_CHECK_EQ(h % 2, 0u);
  BAGUA_CHECK_EQ(w % 2, 0u);
}

Status MaxPool2dLayer::Forward(const Tensor& in, Tensor* out) {
  const size_t in_dim = channels_ * h_ * w_;
  if (in.numel() % in_dim != 0) {
    return Status::InvalidArgument(name_ + ": input shape mismatch");
  }
  batch_ = in.numel() / in_dim;
  const size_t oh = h_ / 2, ow = w_ / 2;
  *out = Tensor::Zeros({batch_, out_dim()}, name_ + ".out");
  argmax_.assign(batch_ * out_dim(), 0);
  for (size_t b = 0; b < batch_; ++b) {
    const float* ib = in.data() + b * in_dim;
    float* ob = out->data() + b * out_dim();
    for (size_t c = 0; c < channels_; ++c) {
      for (size_t oy = 0; oy < oh; ++oy) {
        for (size_t ox = 0; ox < ow; ++ox) {
          float best = -1e30f;
          uint32_t best_idx = 0;
          for (size_t dy = 0; dy < 2; ++dy) {
            for (size_t dx = 0; dx < 2; ++dx) {
              const size_t idx =
                  (c * h_ + 2 * oy + dy) * w_ + (2 * ox + dx);
              if (ib[idx] > best) {
                best = ib[idx];
                best_idx = static_cast<uint32_t>(idx);
              }
            }
          }
          const size_t oidx = (c * oh + oy) * ow + ox;
          ob[oidx] = best;
          argmax_[b * out_dim() + oidx] = best_idx;
        }
      }
    }
  }
  return Status::OK();
}

Status MaxPool2dLayer::Backward(const Tensor& grad_out, Tensor* grad_in) {
  if (argmax_.empty()) {
    return Status::FailedPrecondition(name_ + ": Backward before Forward");
  }
  if (grad_out.numel() != batch_ * out_dim()) {
    return Status::InvalidArgument(name_ + ": grad_out shape mismatch");
  }
  if (grad_in == nullptr) return Status::OK();
  const size_t in_dim = channels_ * h_ * w_;
  *grad_in = Tensor::Zeros({batch_, in_dim}, name_ + ".gin");
  for (size_t b = 0; b < batch_; ++b) {
    const float* gb = grad_out.data() + b * out_dim();
    float* gi = grad_in->data() + b * in_dim;
    for (size_t o = 0; o < out_dim(); ++o) {
      gi[argmax_[b * out_dim() + o]] += gb[o];
    }
  }
  return Status::OK();
}

}  // namespace bagua
